//! The k-Shape clustering algorithm (Paparrizos & Gravano, SIGMOD 2015/2016),
//! as used by Sieve to group similar-behaving metrics of a component.
//!
//! k-Shape alternates between
//!
//! * an **assignment step** that places each (z-normalized) time series into
//!   the cluster whose centroid has the smallest shape-based distance
//!   ([`sieve_timeseries::sbd`]), and
//! * a **refinement step** ("shape extraction") that recomputes each cluster
//!   centroid as the series maximising the squared normalized
//!   cross-correlation to all members — the dominant eigenvector of
//!   `Q^T S Q`, where `S` is the sum of outer products of the aligned members
//!   and `Q` the centering projection. We find that eigenvector with power
//!   iteration using implicit matrix-vector products, so no `m × m` matrix is
//!   ever materialised.
//!
//! The algorithm stops when the assignment no longer changes or after
//! `max_iterations`.

use crate::distance::compute_spectra;
use crate::{ClusterError, Result};
use sieve_timeseries::normalize::{z_normalize, z_normalize_into};
use sieve_timeseries::sbd::{align_to, apply_shift, shape_based_distance};
use sieve_timeseries::spectrum::{sbd_from_spectra, SeriesSpectrum};

/// Configuration of a k-Shape run.
#[derive(Debug, Clone, PartialEq)]
pub struct KShapeConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum number of assignment/refinement iterations.
    pub max_iterations: usize,
    /// Number of power-iteration steps used during shape extraction.
    pub power_iterations: usize,
    /// Optional initial assignment (e.g. from name-similarity pre-clustering,
    /// see [`crate::jaro::pre_cluster_names`]). When `None`, a deterministic
    /// round-robin assignment is used.
    pub initial_assignment: Option<Vec<usize>>,
}

impl KShapeConfig {
    /// Creates a configuration with `k` clusters and default iteration limits
    /// (100 k-Shape iterations, 50 power iterations).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            power_iterations: 50,
            initial_assignment: None,
        }
    }

    /// Sets the initial assignment (builder style).
    pub fn with_initial_assignment(mut self, assignment: Vec<usize>) -> Self {
        self.initial_assignment = Some(assignment);
        self
    }

    /// Sets the maximum number of iterations (builder style).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Validates the configured initial assignment against `n` series (and
    /// `self.k` clusters), or produces the deterministic round-robin
    /// default. Shared by [`KShape::fit`] and [`KShape::fit_cached`].
    fn initial_labels(&self, n: usize) -> Result<Vec<usize>> {
        let k = self.k;
        match &self.initial_assignment {
            Some(init) => {
                if init.len() != n {
                    return Err(ClusterError::InvalidInitialAssignment {
                        reason: format!("expected {} labels, got {}", n, init.len()),
                    });
                }
                if let Some(&bad) = init.iter().find(|&&c| c >= k) {
                    return Err(ClusterError::InvalidInitialAssignment {
                        reason: format!("cluster index {bad} out of range for k={k}"),
                    });
                }
                Ok(init.clone())
            }
            None => Ok((0..n).map(|i| i % k).collect()),
        }
    }
}

/// Outcome of a k-Shape run.
#[derive(Debug, Clone, PartialEq)]
pub struct KShapeResult {
    /// Cluster index (in `0..k`) for every input series.
    pub assignments: Vec<usize>,
    /// The k cluster centroids (z-normalized shapes of the input length).
    pub centroids: Vec<Vec<f64>>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the assignment converged before hitting `max_iterations`.
    pub converged: bool,
}

impl KShapeResult {
    /// Returns the member indices of cluster `c`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of non-empty clusters.
    pub fn non_empty_clusters(&self) -> usize {
        let k = self.centroids.len();
        let mut used = vec![false; k];
        for &a in &self.assignments {
            used[a] = true;
        }
        used.iter().filter(|&&u| u).count()
    }
}

/// Precomputed per-series state shared across k-Shape runs: the z-normalized
/// copy of every input series and the cached FFT spectrum of each copy.
///
/// k selection fits the same series for every candidate `k`; building one
/// cache and passing it to [`KShape::fit_cached`] for each `k` computes the
/// n z-normalizations and n forward FFTs once instead of once per `k` — and
/// within a fit, each assignment step computes one spectrum per *centroid*
/// instead of re-running three FFTs per (series, centroid) pair.
#[derive(Debug, Clone)]
pub struct KShapeSeriesCache {
    /// z-normalized copies of the input series, packed end to end in one
    /// contiguous columnar arena of `count × series_len` values. Series `i`
    /// occupies `z_buffer[i * series_len..(i + 1) * series_len]`; the packing
    /// keeps the refinement loops walking sequential memory instead of
    /// chasing one heap allocation per series.
    z_buffer: Vec<f64>,
    /// Length of each (rectangular) series.
    series_len: usize,
    /// Number of cached series.
    count: usize,
    /// Spectra of the z-normalized copies.
    spectra: Vec<SeriesSpectrum>,
}

impl KShapeSeriesCache {
    /// Builds the cache: z-normalizes every series and computes its
    /// spectrum.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::NoData`] when `series` is empty or the series
    ///   length is zero.
    /// * [`ClusterError::InconsistentLengths`] when the series lengths
    ///   differ.
    pub fn new<S: AsRef<[f64]>>(series: &[S]) -> Result<Self> {
        Self::new_parallel(series, 1)
    }

    /// Like [`KShapeSeriesCache::new`], but distributes the z-normalizations
    /// and forward FFTs over up to `workers` threads (the cache is identical
    /// for every worker count).
    ///
    /// # Errors
    ///
    /// Same as [`KShapeSeriesCache::new`].
    pub fn new_parallel<S: AsRef<[f64]>>(series: &[S], workers: usize) -> Result<Self> {
        if series.is_empty() || series[0].as_ref().is_empty() {
            return Err(ClusterError::NoData);
        }
        let m = series[0].as_ref().len();
        for (i, s) in series.iter().enumerate() {
            if s.as_ref().len() != m {
                return Err(ClusterError::InconsistentLengths {
                    expected: m,
                    index: i,
                    actual: s.as_ref().len(),
                });
            }
        }
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_ref()).collect();
        // Each worker z-normalizes a contiguous group of series straight
        // into a packed sub-buffer; the group buffers concatenate into one
        // columnar arena. `z_normalize_into` is bit-identical to
        // `z_normalize`, so the cache contents do not depend on the worker
        // count or the grouping.
        let chunk = refs.len().div_ceil(workers.max(1)).max(1);
        let groups: Vec<&[&[f64]]> = refs.chunks(chunk).collect();
        let packed: Vec<Vec<f64>> = sieve_exec::par_map_chunks(workers, &groups, |group| {
            let mut buf = vec![0.0; group.len() * m];
            for (s, out) in group.iter().zip(buf.chunks_exact_mut(m)) {
                z_normalize_into(s, out);
            }
            buf
        });
        let z_buffer = packed.concat();
        let views: Vec<&[f64]> = z_buffer.chunks_exact(m).collect();
        let spectra = compute_spectra(&views, workers)?;
        Ok(Self {
            z_buffer,
            series_len: m,
            count: refs.len(),
            spectra,
        })
    }

    /// Number of cached series.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the cache holds zero series.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Length of each (rectangular) series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The z-normalized copy of series `i` — a view into the contiguous
    /// columnar arena.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn series(&self, i: usize) -> &[f64] {
        let start = i * self.series_len;
        &self.z_buffer[start..start + self.series_len]
    }
}

/// The k-Shape clustering algorithm.
#[derive(Debug, Clone)]
pub struct KShape {
    config: KShapeConfig,
}

impl KShape {
    /// Creates a new k-Shape instance with the given configuration.
    pub fn new(config: KShapeConfig) -> Self {
        Self { config }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &KShapeConfig {
        &self.config
    }

    /// Clusters `series` into `k` groups.
    ///
    /// All series must have the same, non-zero length. Inputs are
    /// z-normalized internally, so amplitude differences between metrics do
    /// not matter. The input is generic over anything slice-like
    /// (`Vec<f64>`, `&[f64]`, `Arc<[f64]>`, …) so callers holding shared
    /// buffers never have to copy them to cluster.
    ///
    /// This is the direct-SBD reference implementation: every distance
    /// re-z-normalizes both operands and runs three fresh FFTs. Callers that
    /// fit the same series repeatedly (the silhouette k sweep) should build
    /// a [`KShapeSeriesCache`] once and call [`KShape::fit_cached`], which
    /// produces bit-identical results from cached spectra.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::NoData`] when `series` is empty or the series length is zero.
    /// * [`ClusterError::InvalidClusterCount`] when `k` is zero or exceeds the number of series.
    /// * [`ClusterError::InconsistentLengths`] when the series lengths differ.
    /// * [`ClusterError::InvalidInitialAssignment`] when a provided initial
    ///   assignment has the wrong length or out-of-range cluster indices.
    pub fn fit<S: AsRef<[f64]>>(&self, series: &[S]) -> Result<KShapeResult> {
        let n = series.len();
        if n == 0 {
            return Err(ClusterError::NoData);
        }
        let k = self.config.k;
        if k == 0 || k > n {
            return Err(ClusterError::InvalidClusterCount {
                requested: k,
                available: n,
            });
        }
        let m = series[0].as_ref().len();
        if m == 0 {
            return Err(ClusterError::NoData);
        }
        for (i, s) in series.iter().enumerate() {
            if s.as_ref().len() != m {
                return Err(ClusterError::InconsistentLengths {
                    expected: m,
                    index: i,
                    actual: s.as_ref().len(),
                });
            }
        }

        // z-normalize all inputs once.
        let data: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s.as_ref())).collect();

        let mut assignments = self.config.initial_labels(n)?;

        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];
        let mut iterations = 0usize;
        let mut converged = false;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;

            // Refinement: extract the shape of every cluster.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&Vec<f64>> = data
                    .iter()
                    .zip(assignments.iter())
                    .filter(|(_, &a)| a == c)
                    .map(|(s, _)| s)
                    .collect();
                if members.is_empty() {
                    continue; // keep the previous centroid
                }
                *centroid = extract_shape(&members, centroid, self.config.power_iterations)?;
            }

            // Assignment: nearest centroid under SBD.
            let mut changed = false;
            for (i, s) in data.iter().enumerate() {
                let mut best_cluster = assignments[i];
                let mut best_dist = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = if centroid.iter().all(|&v| v == 0.0) {
                        // Uninitialised/empty centroid: maximal distance so it
                        // only attracts members when every other option is
                        // worse.
                        2.0
                    } else {
                        shape_based_distance(centroid, s)?.distance
                    };
                    if d < best_dist {
                        best_dist = d;
                        best_cluster = c;
                    }
                }
                if best_cluster != assignments[i] {
                    assignments[i] = best_cluster;
                    changed = true;
                }
            }

            if !changed {
                converged = true;
                break;
            }
        }

        Ok(KShapeResult {
            assignments,
            centroids,
            iterations,
            converged,
        })
    }

    /// Clusters the cached series, reusing the z-normalized copies and the
    /// per-series spectra in [`KShapeSeriesCache`].
    ///
    /// This is the cached-engine counterpart of [`KShape::fit`]: instead of
    /// re-z-normalizing and re-FFT-ing both operands of every shape-based
    /// distance, the assignment step computes one spectrum per centroid and
    /// pairs it with the cached series spectra, and centroid refinement
    /// aligns members through the cached spectra as well. The result is
    /// **bit-identical** to [`KShape::fit`] on the same series (asserted by
    /// tests): both paths run the exact same float operations, the cached
    /// path just runs each of them once.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidClusterCount`] when `k` is zero or exceeds
    ///   the number of cached series.
    /// * [`ClusterError::InvalidInitialAssignment`] when a provided initial
    ///   assignment has the wrong length or out-of-range cluster indices.
    pub fn fit_cached(&self, cache: &KShapeSeriesCache) -> Result<KShapeResult> {
        let n = cache.len();
        let k = self.config.k;
        if k == 0 || k > n {
            return Err(ClusterError::InvalidClusterCount {
                requested: k,
                available: n,
            });
        }
        let m = cache.series_len();

        let mut assignments = self.config.initial_labels(n)?;

        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];
        let mut iterations = 0usize;
        let mut converged = false;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;

            // Refinement: extract the shape of every cluster.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<usize> = assignments
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| a == c)
                    .map(|(i, _)| i)
                    .collect();
                if members.is_empty() {
                    continue; // keep the previous centroid
                }
                *centroid =
                    extract_shape_cached(cache, &members, centroid, self.config.power_iterations)?;
            }

            // Assignment: nearest centroid under SBD. One spectrum per
            // non-empty centroid serves all n series this iteration.
            let centroid_spectra: Vec<Option<SeriesSpectrum>> = centroids
                .iter()
                .map(|centroid| {
                    if centroid.iter().all(|&v| v == 0.0) {
                        Ok(None)
                    } else {
                        SeriesSpectrum::compute(centroid).map(Some)
                    }
                })
                .collect::<std::result::Result<_, _>>()?;
            let mut changed = false;
            for (i, spectrum) in cache.spectra.iter().enumerate() {
                let mut best_cluster = assignments[i];
                let mut best_dist = f64::INFINITY;
                for (c, centroid_spectrum) in centroid_spectra.iter().enumerate() {
                    let d = match centroid_spectrum {
                        // Uninitialised/empty centroid: maximal distance so
                        // it only attracts members when every other option
                        // is worse.
                        None => 2.0,
                        Some(cs) => sbd_from_spectra(cs, spectrum)?.distance,
                    };
                    if d < best_dist {
                        best_dist = d;
                        best_cluster = c;
                    }
                }
                if best_cluster != assignments[i] {
                    assignments[i] = best_cluster;
                    changed = true;
                }
            }

            if !changed {
                converged = true;
                break;
            }
        }

        Ok(KShapeResult {
            assignments,
            centroids,
            iterations,
            converged,
        })
    }
}

/// Shape extraction: computes the centroid of a cluster as the dominant
/// eigenvector of the centred correlation matrix of the members aligned to
/// the previous centroid.
///
/// # Errors
///
/// Propagates time-series errors from the alignment step (only possible for
/// empty inputs, which callers exclude).
fn extract_shape(
    members: &[&Vec<f64>],
    previous_centroid: &[f64],
    power_iterations: usize,
) -> Result<Vec<f64>> {
    let m = members[0].len();

    // Reference for alignment: previous centroid, or the first member if the
    // centroid is still the zero vector.
    let reference: Vec<f64> = if previous_centroid.iter().all(|&v| v == 0.0) {
        members[0].clone()
    } else {
        previous_centroid.to_vec()
    };

    // Align every member to the reference and z-normalize.
    let mut aligned: Vec<Vec<f64>> = Vec::with_capacity(members.len());
    for s in members {
        let a = align_to(&reference, s)?;
        aligned.push(z_normalize(&a));
    }

    let candidate = match power_iterate_shape(&aligned, m, power_iterations) {
        ShapeCandidate::Degenerate(centroid) => return Ok(centroid),
        ShapeCandidate::Candidate(candidate) => candidate,
    };

    // The eigenvector's sign is arbitrary; pick the orientation closer to the
    // cluster members.
    let centroid = candidate;
    let flipped: Vec<f64> = centroid.iter().map(|x| -x).collect();
    let dist = |c: &[f64]| -> f64 {
        aligned
            .iter()
            .map(|a| {
                shape_based_distance(c, a)
                    .map(|r| r.distance)
                    .unwrap_or(2.0)
            })
            .sum()
    };
    if dist(&flipped) < dist(&centroid) {
        Ok(flipped)
    } else {
        Ok(centroid)
    }
}

/// Cached-spectrum counterpart of [`extract_shape`], bit-identical to it:
/// members are aligned through their cached spectra (one reference spectrum
/// serves the whole cluster) and the orientation check computes each aligned
/// member's spectrum once instead of once per candidate orientation.
///
/// # Errors
///
/// Propagates time-series errors from the spectrum computations (only
/// possible for empty inputs, which callers exclude).
fn extract_shape_cached(
    cache: &KShapeSeriesCache,
    members: &[usize],
    previous_centroid: &[f64],
    power_iterations: usize,
) -> Result<Vec<f64>> {
    let m = cache.series_len();

    // Reference for alignment: previous centroid, or the first member if the
    // centroid is still the zero vector.
    let reference: Vec<f64> = if previous_centroid.iter().all(|&v| v == 0.0) {
        cache.series(members[0]).to_vec()
    } else {
        previous_centroid.to_vec()
    };
    let reference_spectrum = SeriesSpectrum::compute(&reference)?;

    // Align every member to the reference and z-normalize.
    let mut aligned: Vec<Vec<f64>> = Vec::with_capacity(members.len());
    for &i in members {
        let r = sbd_from_spectra(&reference_spectrum, &cache.spectra[i])?;
        aligned.push(z_normalize(&apply_shift(cache.series(i), r.shift)));
    }

    let candidate = match power_iterate_shape(&aligned, m, power_iterations) {
        ShapeCandidate::Degenerate(centroid) => return Ok(centroid),
        ShapeCandidate::Candidate(candidate) => candidate,
    };

    // The eigenvector's sign is arbitrary; pick the orientation closer to
    // the cluster members. Each aligned member's spectrum is computed once
    // and shared by both candidate orientations.
    let centroid = candidate;
    let flipped: Vec<f64> = centroid.iter().map(|x| -x).collect();
    let aligned_spectra: Vec<SeriesSpectrum> = aligned
        .iter()
        .map(|a| SeriesSpectrum::compute(a))
        .collect::<std::result::Result<_, _>>()?;
    let dist = |c: &[f64]| -> Result<f64> {
        let cs = SeriesSpectrum::compute(c)?;
        Ok(aligned_spectra
            .iter()
            .map(|a| sbd_from_spectra(&cs, a).map(|r| r.distance).unwrap_or(2.0))
            .sum())
    };
    if dist(&flipped)? < dist(&centroid)? {
        Ok(flipped)
    } else {
        Ok(centroid)
    }
}

/// Result of the power-iteration core shared by [`extract_shape`] and
/// [`extract_shape_cached`].
enum ShapeCandidate {
    /// Degenerate cluster (all members constant after normalization): the
    /// element-wise mean of the aligned members, already final.
    Degenerate(Vec<f64>),
    /// z-normalized dominant-eigenvector candidate; the caller still picks
    /// the orientation (the eigenvector's sign is arbitrary).
    Candidate(Vec<f64>),
}

/// Power iteration on M = Q^T S Q with S = sum_i a_i a_i^T and
/// Q = I - 1/m * ones, over the aligned, z-normalized cluster members.
/// Matrix-vector products are computed implicitly:
///   `M v = Q ( sum_i a_i (a_i . Qv) )`   (Q is symmetric).
fn power_iterate_shape(aligned: &[Vec<f64>], m: usize, power_iterations: usize) -> ShapeCandidate {
    let center = |v: &[f64]| -> Vec<f64> {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        v.iter().map(|x| x - mean).collect()
    };

    // Deterministic, non-degenerate start vector.
    let mut v: Vec<f64> = (0..m)
        .map(|i| ((i as f64) * 0.754877 + 0.1).sin() + 0.01)
        .collect();
    normalize_vec(&mut v);

    for _ in 0..power_iterations.max(1) {
        let qv = center(&v);
        let mut sv = vec![0.0; m];
        for a in aligned {
            let dot: f64 = a.iter().zip(qv.iter()).map(|(x, y)| x * y).sum();
            for (s, &ai) in sv.iter_mut().zip(a.iter()) {
                *s += ai * dot;
            }
        }
        let mut new_v = center(&sv);
        let norm = new_v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Fall back to the element-wise mean of aligned members.
            let mut mean = vec![0.0; m];
            for a in aligned {
                for (mu, &ai) in mean.iter_mut().zip(a.iter()) {
                    *mu += ai / aligned.len() as f64;
                }
            }
            return ShapeCandidate::Degenerate(z_normalize(&mean));
        }
        for x in new_v.iter_mut() {
            *x /= norm;
        }
        v = new_v;
    }
    ShapeCandidate::Candidate(z_normalize(&v))
}

fn normalize_vec(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `count` noisy copies of a base shape, each scaled and offset
    /// differently (k-Shape must be invariant to that).
    fn noisy_family(
        base: &dyn Fn(usize) -> f64,
        count: usize,
        len: usize,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for c in 0..count {
            let scale = 1.0 + c as f64 * 0.7;
            let offset = c as f64 * 3.0;
            out.push(
                (0..len)
                    .map(|i| base(i) * scale + offset + 0.05 * next())
                    .collect(),
            );
        }
        out
    }

    #[test]
    fn separates_two_distinct_shape_families() {
        let len = 48;
        let sines = noisy_family(&|i| ((i as f64) * 0.4).sin(), 5, len, 7);
        let ramps = noisy_family(&|i| i as f64 / 10.0, 5, len, 13);
        let mut series = sines.clone();
        series.extend(ramps.clone());

        let result = KShape::new(KShapeConfig::new(2)).fit(&series).unwrap();
        let first = result.assignments[0];
        for i in 0..5 {
            assert_eq!(result.assignments[i], first, "sines must cluster together");
        }
        let second = result.assignments[5];
        assert_ne!(first, second);
        for i in 5..10 {
            assert_eq!(result.assignments[i], second, "ramps must cluster together");
        }
        assert!(result.converged);
    }

    #[test]
    fn single_cluster_contains_everything() {
        let series: Vec<Vec<f64>> = (0..4)
            .map(|c| (0..16).map(|i| (i + c) as f64).collect())
            .collect();
        let result = KShape::new(KShapeConfig::new(1)).fit(&series).unwrap();
        assert!(result.assignments.iter().all(|&a| a == 0));
        assert_eq!(result.non_empty_clusters(), 1);
    }

    #[test]
    fn k_equal_n_is_accepted() {
        let series: Vec<Vec<f64>> = vec![
            (0..16).map(|i| (i as f64).sin()).collect(),
            (0..16).map(|i| (i as f64).cos()).collect(),
            (0..16).map(|i| i as f64).collect(),
        ];
        let result = KShape::new(KShapeConfig::new(3)).fit(&series).unwrap();
        assert_eq!(result.assignments.len(), 3);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let series = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        assert!(matches!(
            KShape::new(KShapeConfig::new(0)).fit(&series),
            Err(ClusterError::InvalidClusterCount { .. })
        ));
        assert!(matches!(
            KShape::new(KShapeConfig::new(3)).fit(&series),
            Err(ClusterError::InvalidClusterCount { .. })
        ));
        assert!(matches!(
            KShape::new(KShapeConfig::new(1)).fit::<Vec<f64>>(&[]),
            Err(ClusterError::NoData)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            KShape::new(KShapeConfig::new(1)).fit(&ragged),
            Err(ClusterError::InconsistentLengths { .. })
        ));
    }

    #[test]
    fn rejects_bad_initial_assignment() {
        let series = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]];
        let cfg = KShapeConfig::new(2).with_initial_assignment(vec![0]);
        assert!(matches!(
            KShape::new(cfg).fit(&series),
            Err(ClusterError::InvalidInitialAssignment { .. })
        ));
        let cfg = KShapeConfig::new(2).with_initial_assignment(vec![0, 5]);
        assert!(matches!(
            KShape::new(cfg).fit(&series),
            Err(ClusterError::InvalidInitialAssignment { .. })
        ));
    }

    #[test]
    fn warm_start_reaches_same_partition_as_cold_start() {
        let len = 40;
        let spikes = noisy_family(&|i| if i % 10 == 0 { 5.0 } else { 0.0 }, 4, len, 3);
        let waves = noisy_family(&|i| ((i as f64) * 0.5).cos(), 4, len, 11);
        let mut series = spikes;
        series.extend(waves);

        let cold = KShape::new(KShapeConfig::new(2)).fit(&series).unwrap();
        let warm_init = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let warm = KShape::new(KShapeConfig::new(2).with_initial_assignment(warm_init))
            .fit(&series)
            .unwrap();
        // Same partition (cluster labels may be permuted).
        let agree =
            crate::ami::adjusted_mutual_information(&cold.assignments, &warm.assignments).unwrap();
        assert!(agree > 0.99, "partitions differ: AMI = {agree}");
        // Warm start should converge at least as fast.
        assert!(warm.iterations <= cold.iterations + 1);
    }

    #[test]
    fn centroids_are_z_normalized_shapes() {
        let series = noisy_family(&|i| ((i as f64) * 0.3).sin(), 6, 32, 5);
        let result = KShape::new(KShapeConfig::new(2)).fit(&series).unwrap();
        for c in &result.centroids {
            if c.iter().all(|&v| v == 0.0) {
                continue; // empty cluster placeholder
            }
            let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
            assert!(mean.abs() < 1e-6);
        }
    }

    #[test]
    fn members_of_partitions_all_indices() {
        let series: Vec<Vec<f64>> = (0..6)
            .map(|c| (0..24).map(|i| ((i * (c + 1)) as f64).sin()).collect())
            .collect();
        let result = KShape::new(KShapeConfig::new(3)).fit(&series).unwrap();
        let mut all: Vec<usize> = (0..3).flat_map(|c| result.members_of(c)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn fit_cached_is_bit_identical_to_fit() {
        let len = 48;
        let sines = noisy_family(&|i| ((i as f64) * 0.4).sin(), 5, len, 7);
        let ramps = noisy_family(&|i| i as f64 / 10.0, 5, len, 13);
        let spikes = noisy_family(&|i| if i % 12 == 0 { 4.0 } else { 0.0 }, 4, len, 29);
        let mut series = sines;
        series.extend(ramps);
        series.extend(spikes);

        let cache = KShapeSeriesCache::new(&series).unwrap();
        assert_eq!(cache.len(), 14);
        assert_eq!(cache.series_len(), len);
        for k in 1..=4 {
            let kshape = KShape::new(KShapeConfig::new(k));
            let direct = kshape.fit(&series).unwrap();
            let cached = kshape.fit_cached(&cache).unwrap();
            // Full structural equality: assignments, iteration counts and
            // every centroid value bit-for-bit.
            assert_eq!(direct.assignments, cached.assignments, "k = {k}");
            assert_eq!(direct.iterations, cached.iterations, "k = {k}");
            assert_eq!(direct.converged, cached.converged, "k = {k}");
            for (dc, cc) in direct.centroids.iter().zip(cached.centroids.iter()) {
                for (a, b) in dc.iter().zip(cc.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k = {k}");
                }
            }
        }
    }

    #[test]
    fn fit_cached_handles_constant_members_like_fit() {
        let mut series: Vec<Vec<f64>> = vec![vec![5.0; 20], vec![0.0; 20]];
        series.push((0..20).map(|i| i as f64).collect());
        series.push((0..20).map(|i| (20 - i) as f64).collect());
        let cache = KShapeSeriesCache::new(&series).unwrap();
        let kshape = KShape::new(KShapeConfig::new(2));
        let direct = kshape.fit(&series).unwrap();
        let cached = kshape.fit_cached(&cache).unwrap();
        assert_eq!(direct, cached);
    }

    #[test]
    fn cache_validates_inputs_like_fit() {
        assert!(matches!(
            KShapeSeriesCache::new::<Vec<f64>>(&[]),
            Err(ClusterError::NoData)
        ));
        assert!(matches!(
            KShapeSeriesCache::new(&[Vec::<f64>::new()]),
            Err(ClusterError::NoData)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            KShapeSeriesCache::new(&ragged),
            Err(ClusterError::InconsistentLengths { .. })
        ));
        let cache = KShapeSeriesCache::new(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(!cache.is_empty());
        assert!(matches!(
            KShape::new(KShapeConfig::new(0)).fit_cached(&cache),
            Err(ClusterError::InvalidClusterCount { .. })
        ));
        assert!(matches!(
            KShape::new(KShapeConfig::new(3)).fit_cached(&cache),
            Err(ClusterError::InvalidClusterCount { .. })
        ));
        let bad_init = KShapeConfig::new(2).with_initial_assignment(vec![0, 7]);
        assert!(matches!(
            KShape::new(bad_init).fit_cached(&cache),
            Err(ClusterError::InvalidInitialAssignment { .. })
        ));
    }

    #[test]
    fn columnar_cache_views_match_per_series_z_normalize_bitwise() {
        let series = noisy_family(&|i| ((i as f64) * 0.3).sin(), 7, 33, 41);
        for workers in [1, 2, 4, 16] {
            let cache = KShapeSeriesCache::new_parallel(&series, workers).unwrap();
            assert_eq!(cache.len(), series.len());
            assert_eq!(cache.series_len(), 33);
            for (i, s) in series.iter().enumerate() {
                let expected = z_normalize(s);
                let view = cache.series(i);
                assert_eq!(view.len(), expected.len());
                for (a, b) in view.iter().zip(expected.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "series {i}, workers {workers}");
                }
            }
        }
    }

    #[test]
    fn constant_series_do_not_break_clustering() {
        let mut series: Vec<Vec<f64>> = vec![vec![5.0; 20], vec![0.0; 20]];
        series.push((0..20).map(|i| i as f64).collect());
        series.push((0..20).map(|i| (20 - i) as f64).collect());
        let result = KShape::new(KShapeConfig::new(2)).fit(&series).unwrap();
        assert_eq!(result.assignments.len(), 4);
    }
}
