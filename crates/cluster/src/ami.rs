//! Adjusted Mutual Information (AMI) between two cluster assignments.
//!
//! Sieve evaluates the *consistency* of its clustering across independent
//! measurement runs with the AMI score (Vinh, Epps & Bailey, ICML 2009):
//! "AMI is normalized against a random assignment and ranges from zero to
//! one: If AMI is equal to one, both clusters match perfectly. Random
//! assignments will be close to zero" (§6.1.1, Figure 3).
//!
//! The implementation follows the standard definition
//!
//! ```text
//! AMI(U, V) = (MI(U, V) - E[MI]) / (max(H(U), H(V)) - E[MI])
//! ```
//!
//! with the expected mutual information `E[MI]` computed under the
//! hypergeometric model of randomness using log-factorials.

use crate::{ClusterError, Result};
use std::collections::HashMap;

/// Contingency table between two labelings plus marginal counts.
#[derive(Debug, Clone)]
struct Contingency {
    /// counts[(i, j)] = number of samples with label i in U and j in V.
    counts: HashMap<(usize, usize), usize>,
    /// Row sums (per label of U).
    a: Vec<usize>,
    /// Column sums (per label of V).
    b: Vec<usize>,
    /// Total number of samples.
    n: usize,
}

fn contingency(u: &[usize], v: &[usize]) -> Result<Contingency> {
    if u.len() != v.len() {
        return Err(ClusterError::LabelLengthMismatch {
            left: u.len(),
            right: v.len(),
        });
    }
    if u.is_empty() {
        return Err(ClusterError::NoData);
    }
    // Re-index labels densely.
    let mut u_index: HashMap<usize, usize> = HashMap::new();
    let mut v_index: HashMap<usize, usize> = HashMap::new();
    for &label in u {
        let next = u_index.len();
        u_index.entry(label).or_insert(next);
    }
    for &label in v {
        let next = v_index.len();
        v_index.entry(label).or_insert(next);
    }
    let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
    let mut a = vec![0usize; u_index.len()];
    let mut b = vec![0usize; v_index.len()];
    for (&lu, &lv) in u.iter().zip(v.iter()) {
        let i = u_index[&lu];
        let j = v_index[&lv];
        *counts.entry((i, j)).or_insert(0) += 1;
        a[i] += 1;
        b[j] += 1;
    }
    Ok(Contingency {
        counts,
        a,
        b,
        n: u.len(),
    })
}

/// Shannon entropy (natural log) of a labeling given its marginal counts.
fn entropy(marginals: &[usize], n: usize) -> f64 {
    marginals
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (natural log) between two labelings.
///
/// # Errors
///
/// * [`ClusterError::LabelLengthMismatch`] when the labelings differ in length.
/// * [`ClusterError::NoData`] when the labelings are empty.
pub fn mutual_information(u: &[usize], v: &[usize]) -> Result<f64> {
    let c = contingency(u, v)?;
    let n = c.n as f64;
    let mut mi = 0.0;
    for (&(i, j), &nij) in &c.counts {
        if nij == 0 {
            continue;
        }
        let nij = nij as f64;
        let ai = c.a[i] as f64;
        let bj = c.b[j] as f64;
        mi += (nij / n) * ((n * nij) / (ai * bj)).ln();
    }
    Ok(mi.max(0.0))
}

/// Natural-log factorial table: `table[i] = ln(i!)`.
fn ln_factorials(up_to: usize) -> Vec<f64> {
    let mut table = vec![0.0; up_to + 1];
    for i in 1..=up_to {
        table[i] = table[i - 1] + (i as f64).ln();
    }
    table
}

/// Expected mutual information under the permutation (hypergeometric) model.
fn expected_mutual_information(c: &Contingency) -> f64 {
    let n = c.n;
    let lf = ln_factorials(n);
    let nf = n as f64;
    let mut emi = 0.0;
    for &ai in &c.a {
        for &bj in &c.b {
            let lower = (ai + bj).saturating_sub(n).max(1);
            let upper = ai.min(bj);
            for nij in lower..=upper {
                let nij_f = nij as f64;
                let term1 = nij_f / nf * ((nf * nij_f) / (ai as f64 * bj as f64)).ln();
                // Hypergeometric probability in log space.
                // Note: nij >= ai + bj - n, so `n + nij - ai - bj` never underflows.
                let log_prob = lf[ai] + lf[bj] + lf[n - ai] + lf[n - bj]
                    - lf[n]
                    - lf[nij]
                    - lf[ai - nij]
                    - lf[bj - nij]
                    - lf[n + nij - ai - bj];
                emi += term1 * log_prob.exp();
            }
        }
    }
    emi
}

/// Adjusted Mutual Information between two labelings, normalised with
/// `max(H(U), H(V))`.
///
/// Returns `1.0` when both labelings are identical partitions (including the
/// degenerate all-in-one-cluster case), values near `0.0` for independent
/// labelings, and may be slightly negative for labelings that agree less
/// than chance.
///
/// # Errors
///
/// * [`ClusterError::LabelLengthMismatch`] when the labelings differ in length.
/// * [`ClusterError::NoData`] when the labelings are empty.
///
/// # Example
///
/// ```
/// use sieve_cluster::ami::adjusted_mutual_information;
///
/// let a = vec![0, 0, 1, 1, 2, 2];
/// let b = vec![5, 5, 9, 9, 7, 7]; // same partition, renamed labels
/// assert!((adjusted_mutual_information(&a, &b).unwrap() - 1.0).abs() < 1e-9);
/// ```
pub fn adjusted_mutual_information(u: &[usize], v: &[usize]) -> Result<f64> {
    let c = contingency(u, v)?;
    // Identical partitions (up to label renaming) always score 1. This also
    // covers the degenerate all-singletons case in which the expected MI
    // equals the entropy and the general formula becomes 0/0.
    if same_partition(u, v) {
        return Ok(1.0);
    }
    let hu = entropy(&c.a, c.n);
    let hv = entropy(&c.b, c.n);
    // Both labelings are single clusters: identical trivial partitions.
    if hu == 0.0 && hv == 0.0 {
        return Ok(1.0);
    }
    let mi = mutual_information(u, v)?;
    let emi = expected_mutual_information(&c);
    let denom = hu.max(hv) - emi;
    if denom.abs() < 1e-15 {
        return Ok(0.0);
    }
    Ok((mi - emi) / denom)
}

/// Whether two labelings describe the same partition (ignoring label names).
fn same_partition(u: &[usize], v: &[usize]) -> bool {
    if u.len() != v.len() {
        return false;
    }
    let mut u_to_v: HashMap<usize, usize> = HashMap::new();
    let mut v_to_u: HashMap<usize, usize> = HashMap::new();
    for (&a, &b) in u.iter().zip(v.iter()) {
        if *u_to_v.entry(a).or_insert(b) != b {
            return false;
        }
        if *v_to_u.entry(b).or_insert(a) != a {
            return false;
        }
    }
    true
}

/// Normalized Mutual Information, `MI / max(H(U), H(V))`; a simpler
/// (non-chance-adjusted) agreement score useful for comparison and tests.
///
/// # Errors
///
/// Same as [`adjusted_mutual_information`].
pub fn normalized_mutual_information(u: &[usize], v: &[usize]) -> Result<f64> {
    let c = contingency(u, v)?;
    let hu = entropy(&c.a, c.n);
    let hv = entropy(&c.b, c.n);
    if hu == 0.0 && hv == 0.0 {
        return Ok(1.0);
    }
    let denom = hu.max(hv);
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(mutual_information(u, v)? / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_have_ami_one() {
        let labels = vec![0, 0, 1, 1, 2, 2, 2, 3];
        assert!((adjusted_mutual_information(&labels, &labels).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permuted_labels_have_ami_one() {
        let a = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let b = vec![2, 2, 2, 0, 0, 0, 1, 1, 1];
        assert!((adjusted_mutual_information(&a, &b).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_labelings_have_ami_near_zero() {
        // A perfectly balanced independent pair of labelings.
        let n = 64;
        let a: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let b: Vec<usize> = (0..n).map(|i| (i / 2) % 2).collect();
        let ami = adjusted_mutual_information(&a, &b).unwrap();
        assert!(ami.abs() < 0.1, "ami {ami}");
    }

    #[test]
    fn ami_penalizes_chance_agreement_more_than_nmi() {
        // Many small clusters vs. few: NMI is inflated by chance, AMI less so.
        let a: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let b: Vec<usize> = (0..30).map(|i| i % 10).collect();
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        let ami = adjusted_mutual_information(&a, &b).unwrap();
        assert!(ami <= nmi + 1e-9);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 0, 1, 1, 1, 1, 0];
        let ami = adjusted_mutual_information(&a, &b).unwrap();
        assert!(ami > 0.0 && ami < 1.0, "ami {ami}");
    }

    #[test]
    fn single_cluster_against_split_is_zero() {
        let a = vec![0, 0, 0, 0];
        let b = vec![0, 1, 2, 3];
        let ami = adjusted_mutual_information(&a, &b).unwrap();
        assert!(ami.abs() < 1e-9, "ami {ami}");
    }

    #[test]
    fn both_trivial_labelings_are_identical() {
        let a = vec![0, 0, 0];
        assert_eq!(adjusted_mutual_information(&a, &a).unwrap(), 1.0);
        assert_eq!(normalized_mutual_information(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert!(adjusted_mutual_information(&[], &[]).is_err());
        assert!(adjusted_mutual_information(&[0, 1], &[0]).is_err());
        assert!(mutual_information(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn mutual_information_is_non_negative_and_bounded_by_entropy() {
        let a = vec![0, 1, 0, 1, 2, 2, 0, 1];
        let b = vec![1, 1, 0, 0, 2, 0, 2, 1];
        let mi = mutual_information(&a, &b).unwrap();
        assert!(mi >= 0.0);
        let c = contingency(&a, &b).unwrap();
        let hu = entropy(&c.a, c.n);
        let hv = entropy(&c.b, c.n);
        assert!(mi <= hu.min(hv) + 1e-9);
    }

    #[test]
    fn ami_is_symmetric() {
        let a = vec![0, 1, 1, 2, 0, 2, 1, 0, 2, 2];
        let b = vec![1, 1, 0, 2, 0, 2, 2, 0, 1, 2];
        let ab = adjusted_mutual_information(&a, &b).unwrap();
        let ba = adjusted_mutual_information(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }
}
