//! Silhouette scoring for cluster-quality assessment.
//!
//! Sieve does not know the right number of clusters per component up front;
//! it "iteratively var\[ies\] the number of clusters used by k-Shape and pick\[s\]
//! the number that gives the best silhouette value" using SBD as the distance
//! (§3.2). The silhouette value of a sample is
//!
//! ```text
//! s(i) = (b(i) - a(i)) / max(a(i), b(i))
//! ```
//!
//! where `a(i)` is the mean distance to the other members of its own cluster
//! and `b(i)` the smallest mean distance to any other cluster.

use crate::distance::DistanceMatrix;
use crate::{ClusterError, Result};
use sieve_timeseries::sbd::sbd;

/// The scoring core shared by every silhouette entry point: mean silhouette
/// of `labels` given any pairwise lookup `dist(i, j)`. Returns `0.0` when
/// fewer than two clusters are used; singletons contribute `0.0` (the
/// scikit-learn convention referenced by the paper).
fn score_from_pairwise(labels: &[usize], dist: impl Fn(usize, usize) -> f64) -> f64 {
    let n = labels.len();
    let clusters: Vec<usize> = {
        let mut c: Vec<usize> = labels.to_vec();
        c.sort_unstable();
        c.dedup();
        c
    };
    if clusters.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size <= 1 {
            continue; // silhouette of a singleton is defined as 0
        }
        let a: f64 = (0..n)
            .filter(|&j| j != i && labels[j] == own)
            .map(|j| dist(i, j))
            .sum::<f64>()
            / (own_size - 1) as f64;

        let mut b = f64::INFINITY;
        for &c in &clusters {
            if c == own {
                continue;
            }
            let members: Vec<usize> = (0..n).filter(|&j| labels[j] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mean: f64 = members.iter().map(|&j| dist(i, j)).sum::<f64>() / members.len() as f64;
            if mean < b {
                b = mean;
            }
        }
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f64
}

/// Computes the mean silhouette score of a labeling of `data` under an
/// arbitrary *fallible* distance function; a distance error aborts the
/// computation instead of being folded into the score.
///
/// Samples in singleton clusters contribute a silhouette of `0.0` (the
/// scikit-learn convention referenced by the paper). Returns `0.0` when only
/// one cluster is used.
///
/// # Errors
///
/// * [`ClusterError::NoData`] for empty input.
/// * [`ClusterError::LabelLengthMismatch`] when `labels` and `data` differ in length.
/// * Any error returned by `distance`.
pub fn try_silhouette_score_with<S, D>(data: &[S], labels: &[usize], mut distance: D) -> Result<f64>
where
    S: AsRef<[f64]>,
    D: FnMut(&[f64], &[f64]) -> Result<f64>,
{
    if data.is_empty() {
        return Err(ClusterError::NoData);
    }
    if data.len() != labels.len() {
        return Err(ClusterError::LabelLengthMismatch {
            left: data.len(),
            right: labels.len(),
        });
    }
    // Fewer than two clusters score 0.0 by definition — bail out before
    // paying for any distance computation.
    let distinct_clusters = {
        let mut c: Vec<usize> = labels.to_vec();
        c.sort_unstable();
        c.dedup();
        c.len()
    };
    if distinct_clusters < 2 {
        return Ok(0.0);
    }
    // Precompute the symmetric distance matrix.
    let n = data.len();
    let mut dist = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distance(data[i].as_ref(), data[j].as_ref())?;
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    Ok(score_from_pairwise(labels, |i, j| dist[i][j]))
}

/// Computes the mean silhouette score of a labeling of `data` under an
/// arbitrary (infallible) distance function. See
/// [`try_silhouette_score_with`] for the conventions.
///
/// # Errors
///
/// * [`ClusterError::NoData`] for empty input.
/// * [`ClusterError::LabelLengthMismatch`] when `labels` and `data` differ in length.
pub fn silhouette_score_with<S, D>(data: &[S], labels: &[usize], mut distance: D) -> Result<f64>
where
    S: AsRef<[f64]>,
    D: FnMut(&[f64], &[f64]) -> f64,
{
    try_silhouette_score_with(data, labels, |a, b| Ok(distance(a, b)))
}

/// Silhouette score under the shape-based distance, the configuration Sieve
/// uses ("We use the SBD as a distance measure in the silhouette
/// computation", §3.2).
///
/// SBD failures (only possible for empty member series) are propagated —
/// they used to be silently mapped to the maximal distance `2.0`, which
/// could quietly inflate distances for degenerate inputs. Note that
/// *constant* series are not an error: their NCC is defined as all zeros,
/// so they keep contributing the well-defined distance `1.0`.
///
/// # Errors
///
/// * Same as [`try_silhouette_score_with`], plus
///   [`ClusterError::TimeSeries`] for empty member series.
pub fn silhouette_score_sbd<S: AsRef<[f64]>>(data: &[S], labels: &[usize]) -> Result<f64> {
    try_silhouette_score_with(data, labels, |a, b| sbd(a, b).map_err(ClusterError::from))
}

/// Silhouette score read from a precomputed [`DistanceMatrix`] instead of
/// recomputing the O(n²) pairwise distances — this is what the per-component
/// k-sweep uses: the matrix does not depend on the labeling, so every k
/// shares one matrix. Bit-identical to [`silhouette_score_sbd`] on the
/// series the matrix was computed from.
///
/// # Errors
///
/// * [`ClusterError::NoData`] for an empty matrix.
/// * [`ClusterError::LabelLengthMismatch`] when `labels` does not match the
///   matrix dimension.
pub fn silhouette_score_from_matrix(matrix: &DistanceMatrix, labels: &[usize]) -> Result<f64> {
    if matrix.is_empty() {
        return Err(ClusterError::NoData);
    }
    if matrix.len() != labels.len() {
        return Err(ClusterError::LabelLengthMismatch {
            left: matrix.len(),
            right: labels.len(),
        });
    }
    Ok(score_from_pairwise(labels, |i, j| matrix.get(i, j)))
}

/// Euclidean distance between equal-length vectors (extra elements of the
/// longer one are ignored); exposed for tests and non-shape use cases.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_score_high() {
        // Two tight groups far apart in Euclidean space.
        let data = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![10.05, 9.95],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let s = silhouette_score_with(&data, &labels, euclidean).unwrap();
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn wrong_assignment_scores_lower_than_right_one() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![10.0, 10.0],
            vec![10.2, 10.1],
        ];
        let good = silhouette_score_with(&data, &[0, 0, 1, 1], euclidean).unwrap();
        let bad = silhouette_score_with(&data, &[0, 1, 0, 1], euclidean).unwrap();
        assert!(good > bad);
        assert!(
            bad < 0.0,
            "mixing far-apart points should be negative: {bad}"
        );
    }

    #[test]
    fn single_cluster_scores_zero() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert_eq!(
            silhouette_score_with(&data, &[0, 0, 0], euclidean).unwrap(),
            0.0
        );
    }

    #[test]
    fn singleton_clusters_contribute_zero() {
        let data = vec![vec![0.0], vec![0.1], vec![9.0]];
        let s = silhouette_score_with(&data, &[0, 0, 1], euclidean).unwrap();
        // The two members of cluster 0 are very close compared to cluster 1,
        // so the average over 3 samples is about 2/3 * ~1.0.
        assert!(s > 0.6 && s < 0.7, "score {s}");
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(silhouette_score_with::<Vec<f64>, _>(&[], &[], euclidean).is_err());
        let data = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            silhouette_score_with(&data, &[0], euclidean),
            Err(ClusterError::LabelLengthMismatch { .. })
        ));
    }

    #[test]
    fn sbd_silhouette_prefers_shape_based_grouping() {
        // Group A: sine shapes with different amplitudes; group B: ramps.
        let len = 32;
        let mut data: Vec<Vec<f64>> = Vec::new();
        for amp in [1.0, 5.0, 0.3] {
            data.push((0..len).map(|i| amp * ((i as f64) * 0.5).sin()).collect());
        }
        for slope in [1.0, 2.0, 0.5] {
            data.push((0..len).map(|i| slope * i as f64).collect());
        }
        let by_shape = silhouette_score_sbd(&data, &[0, 0, 0, 1, 1, 1]).unwrap();
        let mixed = silhouette_score_sbd(&data, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(by_shape > mixed);
        assert!(by_shape > 0.5);
    }

    #[test]
    fn matrix_backed_score_is_bit_identical_to_direct_sbd() {
        let data: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                (0..40)
                    .map(|j| ((j as f64) * (0.2 + 0.03 * (i % 3) as f64)).sin() + i as f64)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let direct = silhouette_score_sbd(&data, &labels).unwrap();
        let matrix = crate::distance::DistanceMatrix::compute(&data, 1).unwrap();
        let cached = silhouette_score_from_matrix(&matrix, &labels).unwrap();
        assert_eq!(direct.to_bits(), cached.to_bits());
    }

    #[test]
    fn matrix_backed_score_validates_inputs() {
        let data = vec![vec![1.0, 2.0, 3.0], vec![3.0, 1.0, 2.0]];
        let matrix = crate::distance::DistanceMatrix::compute(&data, 1).unwrap();
        assert!(matches!(
            silhouette_score_from_matrix(&matrix, &[0]),
            Err(ClusterError::LabelLengthMismatch { .. })
        ));
        assert_eq!(silhouette_score_from_matrix(&matrix, &[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn sbd_errors_propagate_instead_of_inflating_distances() {
        // An empty member series used to be scored as distance 2.0; now the
        // error surfaces.
        let data: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![], vec![2.0, 1.0]];
        assert!(matches!(
            silhouette_score_sbd(&data, &[0, 1, 0]),
            Err(ClusterError::TimeSeries(_))
        ));
        // Constant series stay well-defined (SBD = 1 by convention, not an
        // error).
        let with_constant: Vec<Vec<f64>> = vec![
            vec![5.0; 8],
            vec![5.0; 8],
            (0..8).map(|i| i as f64).collect(),
        ];
        let s = silhouette_score_sbd(&with_constant, &[0, 0, 1]).unwrap();
        assert!(s.is_finite());
    }

    #[test]
    fn score_is_bounded() {
        let data: Vec<Vec<f64>> = (0..8)
            .map(|i| (0..16).map(|j| ((i * j) as f64).sin()).collect())
            .collect();
        let labels = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let s = silhouette_score_sbd(&data, &labels).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }
}
