//! Time-series clustering for Sieve's metric-reduction step.
//!
//! Sieve organises each component's metrics into a small number of clusters
//! of similar-behaving time series (§3.2 of the paper) using the k-Shape
//! algorithm of Paparrizos & Gravano, with three adjustments:
//!
//! 1. observations are interpolated and discretised to a 500 ms grid
//!    (provided by `sieve-timeseries`),
//! 2. the initial assignment is derived from metric-*name* similarity
//!    (Jaro distance) instead of being random ([`jaro`]), and
//! 3. the number of clusters is chosen by maximising the silhouette score
//!    computed under the shape-based distance ([`silhouette`]).
//!
//! Because the k sweep re-evaluates the same pairwise distances for every
//! candidate `k`, the hot path runs on a shared SBD engine: per-series
//! spectra ([`sieve_timeseries::spectrum`]) cached in a
//! [`kshape::KShapeSeriesCache`] and a pairwise [`distance::DistanceMatrix`]
//! computed once and read by every silhouette evaluation — bit-identical to
//! the direct path, just without the redundant FFTs.
//!
//! The robustness evaluation of the paper (Figure 3) compares cluster
//! assignments across measurement runs with the Adjusted Mutual Information
//! score, implemented in [`ami`].
//!
//! # Example
//!
//! ```
//! use sieve_cluster::kshape::{KShape, KShapeConfig};
//!
//! // Two obvious groups of shapes: rising ramps and single spikes.
//! let series: Vec<Vec<f64>> = vec![
//!     (0..32).map(|i| i as f64).collect(),
//!     (0..32).map(|i| i as f64 * 2.0 + 3.0).collect(),
//!     (0..32).map(|i| if i == 10 { 5.0 } else { 0.0 }).collect(),
//!     (0..32).map(|i| if i == 12 { 9.0 } else { 0.1 }).collect(),
//! ];
//! let result = KShape::new(KShapeConfig::new(2)).fit(&series).unwrap();
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_eq!(result.assignments[2], result.assignments[3]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ami;
pub mod distance;
pub mod jaro;
pub mod kshape;
pub mod silhouette;

mod error;

pub use error::ClusterError;

/// Convenient result alias for clustering operations.
pub type Result<T> = std::result::Result<T, ClusterError>;
