//! Determinism properties of the scenario generator: same seed — bitwise
//! identical metric stream and ground truth; different seeds — distinct
//! streams.

use sieve_scenario::{generate, scenario_matrix};

#[test]
fn same_seed_reproduces_the_stream_and_truth_bitwise() {
    for case in scenario_matrix() {
        let seed = case.seeds[0];
        let a = generate(&case.spec, seed).unwrap();
        let b = generate(&case.spec, seed).unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: stream fingerprint must be seed-deterministic",
            case.spec.name
        );
        assert_eq!(a.truth, b.truth, "{}: truth must match", case.spec.name);
        // Spot-check the fingerprint claim point by point, bit by bit.
        assert_eq!(a.point_count(), b.point_count());
        for (pa, pb) in a.all_points().zip(b.all_points()) {
            assert_eq!(pa.id, pb.id);
            assert_eq!(pa.timestamp_ms, pb.timestamp_ms);
            assert_eq!(pa.value.to_bits(), pb.value.to_bits());
        }
    }
}

#[test]
fn different_seeds_produce_distinct_streams() {
    for case in scenario_matrix() {
        let a = generate(&case.spec, 1001).unwrap();
        let b = generate(&case.spec, 1002).unwrap();
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: different seeds must differ",
            case.spec.name
        );
        // The script (and therefore the truth timeline) is seed-independent
        // even though the sampled values are not.
        assert_eq!(a.truth.epochs.len(), b.truth.epochs.len());
        for (ta, tb) in a.truth.epochs.iter().zip(b.truth.epochs.iter()) {
            assert_eq!(ta.active_edges, tb.active_edges);
            assert_eq!(ta.offline, tb.offline);
        }
    }
}

#[test]
fn scenario_shape_is_what_the_suite_assumes() {
    for case in scenario_matrix() {
        let data = generate(&case.spec, case.seeds[0]).unwrap();
        assert_eq!(data.epochs.len(), case.spec.epochs);
        assert!(data.point_count() > 0);
        for epoch in &data.epochs {
            // Every online component exports points every epoch.
            for component in data.truth.true_cluster_counts.keys() {
                let offline = epoch.truth.offline.contains(component);
                let has_points = epoch.points.iter().any(|p| p.id.component == *component);
                assert_eq!(
                    has_points, !offline,
                    "{}: epoch {} component {component}",
                    case.spec.name, epoch.epoch
                );
            }
        }
    }
}
