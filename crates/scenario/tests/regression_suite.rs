//! The scenario regression suite: the full matrix of named scenarios ×
//! seeds, graded against ground truth.
//!
//! Thresholds (also the PR's acceptance criteria):
//! * the injected root cause ranks in the top-3 in at least 90% of the
//!   RCA-scored runs (and every individual miss is reported);
//! * every scripted dependency flip is tracked within 3 epochs;
//! * the autoscaling engine reacts to each scripted burst within 40 ticks;
//! * the final streamed model equals a from-scratch batch analysis
//!   bit-for-bit, on every run;
//! * scores are identical across analysis parallelism 1, 4 and 8, and
//!   across the direct-session and serving-layer ingestion paths.

use sieve_rca::RcaConfig;
use sieve_scenario::matrix::DRIFT_WINDOW_EPOCHS;
use sieve_scenario::{
    generate, run_autoscale, run_batch, run_served, run_streamed, scenario_matrix, score_autoscale,
    score_clusters, score_drift, score_rca, smoke_matrix, ScenarioCase,
};
use sieve_serve::ServeConfig;

/// Chosen-k mean absolute error tolerated per run (the k-sweep tends to
/// split one family under adversarial load, not collapse the structure).
const CLUSTER_K_TOLERANCE: f64 = 1.5;

/// Autoscaling targets: the request-path services sized to saturate under
/// a burst.
fn autoscale_targets() -> Vec<String> {
    vec![
        "gateway".to_string(),
        "svc-a".to_string(),
        "svc-b".to_string(),
    ]
}

/// Runs one seeded case and asserts its per-run thresholds; returns the
/// RCA outcome `(scored, hit)` for matrix-level aggregation.
fn grade(case: &ScenarioCase, seed: u64) -> (bool, bool) {
    let name = &case.spec.name;
    let data = generate(&case.spec, seed).expect("generation");
    let config = case.spec.analysis_config(1);
    let models = run_streamed(&data, &config).expect("streamed run");
    assert_eq!(
        models.len(),
        case.spec.epochs,
        "{name}/{seed}: model per epoch"
    );

    // Streamed == batch, bit for bit.
    let batch = run_batch(&data, &config).expect("batch run");
    let final_model = models.last().unwrap();
    assert_eq!(
        **final_model, batch,
        "{name}/{seed}: final streamed model must equal the batch oracle"
    );
    assert!(
        final_model.dependency_graph.edge_count() > 0,
        "{name}/{seed}: the final model found no dependencies at all"
    );

    // Cluster-count selection stays near the true family structure.
    let clusters = score_clusters(final_model, &data.truth);
    assert!(
        clusters.mean_abs_error() <= CLUSTER_K_TOLERANCE,
        "{name}/{seed}: chosen-k error {} exceeds {CLUSTER_K_TOLERANCE}",
        clusters.mean_abs_error()
    );

    // Every scripted dependency flip is tracked within the epoch bound.
    let drift = score_drift(&models, &data.truth);
    assert!(
        drift.all_tracked_within(DRIFT_WINDOW_EPOCHS),
        "{name}/{seed}: drift outcomes {:?} not all within {DRIFT_WINDOW_EPOCHS} epochs",
        drift.outcomes
    );

    // Autoscaling reacts to every scripted burst within the tick bound.
    if let Some(max_lag) = case.autoscale_max_lag_ticks {
        let report = run_autoscale(&case.spec, final_model, autoscale_targets(), 110.0, seed)
            .expect("autoscale run");
        let score = score_autoscale(&report, case.spec.bursts());
        assert!(
            score.all_within(max_lag),
            "{name}/{seed}: autoscale reactions {:?} not all within {max_lag} ticks",
            score.reactions
        );
    }

    // RCA outcome, aggregated by the caller across the matrix.
    match score_rca(&models, &data.truth, RcaConfig::default(), case.rca_top_k) {
        Some(score) => {
            if !score.hit() {
                eprintln!(
                    "{name}/{seed}: root cause {} ranked {:?} (top-{} miss)",
                    score.component, score.rank, score.top_k
                );
            }
            (true, score.hit())
        }
        None => (false, false),
    }
}

fn grade_matrix(cases: &[ScenarioCase]) {
    let mut scored = 0usize;
    let mut hits = 0usize;
    for case in cases {
        for &seed in &case.seeds {
            let (was_scored, hit) = grade(case, seed);
            if was_scored {
                scored += 1;
                hits += usize::from(hit);
            }
        }
    }
    if scored > 0 {
        assert!(
            hits * 10 >= scored * 9,
            "root cause ranked top-k in only {hits}/{scored} runs (< 90%)"
        );
    }
}

/// The CI smoke subset: smoke-tagged scenarios, one seed each.
#[test]
fn smoke_subset_meets_every_threshold() {
    grade_matrix(&smoke_matrix());
}

/// The full matrix across all seeds.
#[test]
fn full_matrix_meets_every_threshold() {
    grade_matrix(&scenario_matrix());
}

/// Scores — and the models behind them — are invariant under the analysis
/// parallelism degree.
#[test]
fn scores_are_identical_across_parallelism_1_4_8() {
    for spec in [
        sieve_scenario::matrix::steady_diurnal(),
        sieve_scenario::matrix::root_cause(),
    ] {
        let data = generate(&spec, 97).unwrap();
        let baseline = run_streamed(&data, &spec.analysis_config(1)).unwrap();
        for parallelism in [4, 8] {
            let other = run_streamed(&data, &spec.analysis_config(parallelism)).unwrap();
            assert_eq!(baseline.len(), other.len());
            for (epoch, (a, b)) in baseline.iter().zip(other.iter()).enumerate() {
                assert_eq!(
                    **a, **b,
                    "{}: epoch {epoch} model differs at parallelism {parallelism}",
                    spec.name
                );
            }
            let rca_a = score_rca(&baseline, &data.truth, RcaConfig::default(), 3);
            let rca_b = score_rca(&other, &data.truth, RcaConfig::default(), 3);
            assert_eq!(
                rca_a.as_ref().map(|s| (s.rank, s.hit())),
                rca_b.as_ref().map(|s| (s.rank, s.hit())),
                "{}: RCA score differs at parallelism {parallelism}",
                spec.name
            );
            assert_eq!(
                score_drift(&baseline, &data.truth),
                score_drift(&other, &data.truth)
            );
        }
    }
}

/// The serving front door (multi-tenant service, sharded registry, sweep)
/// publishes the same per-epoch models as the direct session runner.
#[test]
fn served_ingestion_matches_the_streamed_run() {
    let spec = sieve_scenario::matrix::edge_drift();
    let data = generate(&spec, 31).unwrap();
    let analysis = spec.analysis_config(1);
    let streamed = run_streamed(&data, &analysis).unwrap();
    let served = run_served(
        &data,
        ServeConfig {
            shard_count: 2,
            sweep_parallelism: 1,
            analysis,
            durability: None,
        },
    )
    .unwrap();
    assert_eq!(streamed.len(), served.len());
    for (epoch, (a, b)) in streamed.iter().zip(served.iter()).enumerate() {
        assert_eq!(**a, **b, "epoch {epoch} model differs between paths");
    }
    assert_eq!(
        score_drift(&streamed, &data.truth),
        score_drift(&served, &data.truth)
    );
}
