//! Crash-safety scenario test: kill a durable [`SieveService`] halfway
//! through an adversarial scenario, recover the directory, resume the
//! remaining epochs — the final model and every derived score must be
//! bit-identical to an uncrashed run of the same scenario.

use sieve_rca::RcaConfig;
use sieve_scenario::{generate, run_served, score_clusters, score_drift, score_rca};
use sieve_serve::{DurabilityConfig, FsyncPolicy, ServeConfig, SieveService};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sieve-scenario-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, analysis: sieve_core::config::SieveConfig) -> ServeConfig {
    ServeConfig {
        shard_count: 2,
        sweep_parallelism: 1,
        analysis,
        durability: Some(
            DurabilityConfig::new(dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_events(512),
        ),
    }
}

#[test]
fn crash_and_recovery_mid_scenario_changes_no_score() {
    let spec = sieve_scenario::matrix::root_cause();
    let seed = 41;
    let data = generate(&spec, seed).unwrap();
    let analysis = spec.analysis_config(1);

    // Uncrashed oracle: the plain served run (memory-only).
    let oracle = run_served(
        &data,
        ServeConfig {
            shard_count: 2,
            sweep_parallelism: 1,
            analysis: analysis.clone(),
            durability: None,
        },
    )
    .unwrap();

    // Crashed run: durable service, killed after epoch 3 — mid-scenario,
    // before the epoch-5 fault injection — then recovered and resumed.
    let dir = temp_dir("crash");
    let crash_after = 4; // epochs 0..4 ingested pre-crash
    let service = SieveService::new(durable_config(&dir, analysis.clone())).unwrap();
    service
        .create_tenant_with_retention(
            &data.name,
            data.epochs[0].call_graph.clone(),
            data.retention,
        )
        .unwrap();
    let mut models = Vec::new();
    for epoch in &data.epochs[..crash_after] {
        service.ingest(&data.name, &epoch.points).unwrap();
        service
            .set_call_graph(&data.name, epoch.call_graph.clone())
            .unwrap();
        service.refresh_all().unwrap();
        models.push(service.model(&data.name).unwrap().unwrap());
    }
    drop(service); // crash: no orderly shutdown beyond the WAL's own writes

    let (recovered, report) = SieveService::recover(durable_config(&dir, analysis)).unwrap();
    assert!(report.is_clean(), "{report}");
    for epoch in &data.epochs[crash_after..] {
        recovered.ingest(&data.name, &epoch.points).unwrap();
        recovered
            .set_call_graph(&data.name, epoch.call_graph.clone())
            .unwrap();
        recovered.refresh_all().unwrap();
        models.push(recovered.model(&data.name).unwrap().unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Model per epoch, bit-identical to the uncrashed run.
    assert_eq!(models.len(), oracle.len());
    for (epoch, (crashed, uncrashed)) in models.iter().zip(oracle.iter()).enumerate() {
        assert_eq!(
            **crashed, **uncrashed,
            "epoch {epoch}: crashed-and-recovered model differs from the uncrashed run"
        );
    }

    // And therefore every derived score is identical too.
    let rca_crashed = score_rca(&models, &data.truth, RcaConfig::default(), 3).unwrap();
    let rca_oracle = score_rca(&oracle, &data.truth, RcaConfig::default(), 3).unwrap();
    assert_eq!(rca_crashed.rank, rca_oracle.rank);
    assert!(rca_crashed.hit());
    assert_eq!(
        score_drift(&models, &data.truth),
        score_drift(&oracle, &data.truth)
    );
    let finals: Vec<&Arc<_>> = vec![models.last().unwrap(), oracle.last().unwrap()];
    assert_eq!(
        score_clusters(finals[0], &data.truth).per_component,
        score_clusters(finals[1], &data.truth).per_component
    );
}
