//! The named scenario catalogue and the regression matrix built from it.
//!
//! Each scenario is a [`ScenarioSpec`] over the chaos application
//! ([`sieve_apps::chaos`]) plus the seeds it is run with and the score
//! thresholds it is graded against. [`scenario_matrix`] is the full
//! regression matrix; [`smoke_matrix`] is the one-seed CI subset.

use crate::spec::{ScenarioAction, ScenarioSpec, ScriptedEvent, WorkloadPlan};
use sieve_apps::chaos::{chaos_app, root_cause_fault, DB, SVC_A, SVC_B, WORKER};
use sieve_apps::MetricRichness;
use sieve_simulator::workload::Burst;

/// Epochs per scenario run.
pub const EPOCHS: usize = 8;
/// Simulation ticks per epoch.
pub const TICKS_PER_EPOCH: usize = 24;
/// Milliseconds per tick.
pub const TICK_MS: u64 = 500;
/// Ring-window retention in epochs.
pub const WINDOW_EPOCHS: usize = 2;
/// Top-k bound for the RCA score: the injected root cause must rank in
/// the top 3.
pub const RCA_TOP_K: usize = 3;
/// Drift bound: every scripted edge flip must be tracked within 3 epochs.
pub const DRIFT_WINDOW_EPOCHS: usize = 3;
/// Autoscale bound: a scale-out within 40 ticks of each scripted burst.
pub const AUTOSCALE_MAX_LAG_TICKS: usize = 40;

/// One named scenario plus its seeds and grading thresholds.
#[derive(Debug, Clone)]
pub struct ScenarioCase {
    /// The scenario script.
    pub spec: ScenarioSpec,
    /// Seeds the full matrix runs the scenario with.
    pub seeds: Vec<u64>,
    /// Whether the scenario belongs to the CI smoke subset.
    pub smoke: bool,
    /// Top-k bound for [`crate::score::score_rca`].
    pub rca_top_k: usize,
    /// Epoch bound for [`crate::score::score_drift`].
    pub drift_window_epochs: usize,
    /// Tick bound for [`crate::score::score_autoscale`], if the scenario
    /// scripts bursts.
    pub autoscale_max_lag_ticks: Option<usize>,
}

fn base_spec(
    name: &str,
    workload: WorkloadPlan,
    initially_inactive: Vec<(String, String)>,
    events: Vec<ScriptedEvent>,
) -> ScenarioSpec {
    let chaos = chaos_app(MetricRichness::Minimal);
    ScenarioSpec {
        name: name.to_string(),
        app: chaos.spec,
        true_cluster_counts: chaos.true_cluster_counts,
        workload,
        epochs: EPOCHS,
        ticks_per_epoch: TICKS_PER_EPOCH,
        tick_ms: TICK_MS,
        window_epochs: WINDOW_EPOCHS,
        initially_inactive,
        events,
    }
}

fn oscillating() -> WorkloadPlan {
    WorkloadPlan::Oscillating {
        base: 40.0,
        amplitude: 14.0,
        period_ticks: 16,
        noise: 0.2,
    }
}

fn edge(caller: &str, callee: &str) -> (String, String) {
    (caller.to_string(), callee.to_string())
}

/// A well-behaved diurnal baseline: no faults, no drift — the control run
/// every equality and clustering assertion must hold on.
pub fn steady_diurnal() -> ScenarioSpec {
    base_spec("steady-diurnal", oscillating(), Vec::new(), Vec::new())
}

/// Bursty Poisson arrivals with a mid-run load-regime change (the offered
/// rate nearly doubles at epoch 4).
pub fn poisson_regime() -> ScenarioSpec {
    base_spec(
        "poisson-regime",
        WorkloadPlan::Poisson {
            lambda_per_tick: 40.0,
        },
        Vec::new(),
        vec![ScriptedEvent::at(
            4,
            ScenarioAction::RegimeChange { multiplier: 1.8 },
        )],
    )
}

/// Dependency drift: the `svc-b -> worker` edge appears at epoch 2, the
/// `svc-a -> worker` edge disappears at epoch 5 — the incremental session
/// must track both flips within [`DRIFT_WINDOW_EPOCHS`].
pub fn edge_drift() -> ScenarioSpec {
    base_spec(
        "edge-drift",
        oscillating(),
        vec![edge(SVC_B, WORKER)],
        vec![
            ScriptedEvent::at(
                2,
                ScenarioAction::EdgeUp {
                    caller: SVC_B.to_string(),
                    callee: WORKER.to_string(),
                },
            ),
            ScriptedEvent::at(
                5,
                ScenarioAction::EdgeDown {
                    caller: SVC_A.to_string(),
                    callee: WORKER.to_string(),
                },
            ),
        ],
    )
}

/// Root-cause injection: at epoch 5 `svc-a`'s `req_rate` exporter dies, a
/// `req_errors` gauge appears and its capacity halves — the RCA comparison
/// must rank `svc-a` in the top [`RCA_TOP_K`].
pub fn root_cause() -> ScenarioSpec {
    base_spec(
        "root-cause",
        oscillating(),
        Vec::new(),
        vec![ScriptedEvent::at(
            5,
            ScenarioAction::InjectFault {
                component: SVC_A.to_string(),
                fault: root_cause_fault(SVC_A),
            },
        )],
    )
}

/// Monitoring adversity on the leaf worker: a metric exporter dies, the
/// component's clock skews ahead by 3 s, then both revert (the skew
/// reversal makes the store drop reports until time catches up). Nothing
/// is scored beyond the run completing with the equality invariants —
/// the faults target a component off every scored path.
pub fn dropout_skew() -> ScenarioSpec {
    base_spec(
        "dropout-skew",
        oscillating(),
        Vec::new(),
        vec![
            ScriptedEvent::at(
                2,
                ScenarioAction::DropMetric {
                    component: WORKER.to_string(),
                    metric: "io_ops".to_string(),
                },
            ),
            ScriptedEvent::at(
                3,
                ScenarioAction::ClockSkew {
                    component: WORKER.to_string(),
                    skew_ms: 3_000,
                },
            ),
            ScriptedEvent::at(
                5,
                ScenarioAction::ClockSkew {
                    component: WORKER.to_string(),
                    skew_ms: 0,
                },
            ),
            ScriptedEvent::at(
                6,
                ScenarioAction::RestoreMetric {
                    component: WORKER.to_string(),
                    metric: "io_ops".to_string(),
                },
            ),
        ],
    )
}

/// Everything at once: Poisson arrivals, an edge disappearing, a regime
/// change, a root-cause fault on `svc-b` and a crash+restore of the
/// datastore — RCA and drift must both survive the noise.
pub fn kitchen_sink() -> ScenarioSpec {
    base_spec(
        "kitchen-sink",
        WorkloadPlan::Poisson {
            lambda_per_tick: 40.0,
        },
        Vec::new(),
        vec![
            ScriptedEvent::at(
                2,
                ScenarioAction::EdgeDown {
                    caller: SVC_A.to_string(),
                    callee: WORKER.to_string(),
                },
            ),
            ScriptedEvent::at(3, ScenarioAction::RegimeChange { multiplier: 1.5 }),
            ScriptedEvent::at(
                4,
                ScenarioAction::InjectFault {
                    component: SVC_B.to_string(),
                    fault: root_cause_fault(SVC_B),
                },
            ),
            ScriptedEvent::at(
                6,
                ScenarioAction::Crash {
                    component: DB.to_string(),
                },
            ),
            ScriptedEvent::at(
                7,
                ScenarioAction::Restore {
                    component: DB.to_string(),
                },
            ),
        ],
    )
}

/// A diurnal curve with one scripted load burst — the autoscaling ground
/// truth: the engine must scale out within
/// [`AUTOSCALE_MAX_LAG_TICKS`] of the burst's onset.
pub fn burst_autoscale() -> ScenarioSpec {
    base_spec(
        "burst-autoscale",
        WorkloadPlan::DiurnalBursts {
            base: 30.0,
            relative_amplitude: 0.25,
            period_ticks: 48,
            bursts: vec![Burst::new(60, 36, 110.0)],
        },
        Vec::new(),
        Vec::new(),
    )
}

fn case(
    spec: ScenarioSpec,
    seeds: Vec<u64>,
    smoke: bool,
    autoscale_max_lag_ticks: Option<usize>,
) -> ScenarioCase {
    ScenarioCase {
        spec,
        seeds,
        smoke,
        rca_top_k: RCA_TOP_K,
        drift_window_epochs: DRIFT_WINDOW_EPOCHS,
        autoscale_max_lag_ticks,
    }
}

/// The full regression matrix: every named scenario with its seeds.
pub fn scenario_matrix() -> Vec<ScenarioCase> {
    vec![
        case(steady_diurnal(), vec![11, 12], true, None),
        case(poisson_regime(), vec![21, 22], false, None),
        case(edge_drift(), vec![31, 32, 33], true, None),
        case(root_cause(), vec![41, 42, 43], true, None),
        case(dropout_skew(), vec![51, 52], false, None),
        case(kitchen_sink(), vec![61, 62], false, None),
        case(
            burst_autoscale(),
            vec![71],
            false,
            Some(AUTOSCALE_MAX_LAG_TICKS),
        ),
    ]
}

/// The CI smoke subset: the smoke-tagged scenarios, first seed only.
pub fn smoke_matrix() -> Vec<ScenarioCase> {
    scenario_matrix()
        .into_iter()
        .filter(|c| c.smoke)
        .map(|mut c| {
            c.seeds.truncate(1);
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cataloged_scenario_validates() {
        let matrix = scenario_matrix();
        assert!(matrix.len() >= 6);
        for case in &matrix {
            case.spec
                .validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", case.spec.name));
            assert!(!case.seeds.is_empty());
        }
        let mut names: Vec<&str> = matrix.iter().map(|c| c.spec.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "scenario names must be unique");
    }

    #[test]
    fn smoke_subset_is_a_one_seed_projection_of_the_matrix() {
        let smoke = smoke_matrix();
        assert!(!smoke.is_empty());
        assert!(smoke.len() < scenario_matrix().len());
        let full: Vec<String> = scenario_matrix()
            .iter()
            .map(|c| c.spec.name.clone())
            .collect();
        for case in &smoke {
            assert_eq!(case.seeds.len(), 1);
            assert!(full.contains(&case.spec.name));
        }
    }

    #[test]
    fn scored_scenarios_script_what_their_scores_need() {
        assert!(root_cause().root_cause().is_some());
        assert!(kitchen_sink().root_cause().is_some());
        assert!(steady_diurnal().root_cause().is_none());
        assert_eq!(burst_autoscale().bursts().len(), 1);
        assert!(edge_drift().bursts().is_empty());
    }
}
