//! Chaos/scenario engine: adversarial workloads with ground-truth scoring.
//!
//! The paper evaluates Sieve on live systems where the "right answer" —
//! which component misbehaved, which dependencies are real, how many
//! behaviourally distinct metric groups a component has — is only known
//! anecdotally. This crate turns that around: a seeded discrete-event
//! scenario engine drives the `sieve-simulator` substrate through scripted
//! adversity (Poisson/M-M-c bursty arrivals, diurnal load curves, component
//! crashes, metric dropout, clock skew, load-regime changes, and dependency
//! edges that appear and disappear at scripted epochs) and emits **both**
//! the observable metric stream *and* the ground truth it was generated
//! from. Scoring harnesses then grade the pipeline's answers against that
//! truth:
//!
//! * [`score::score_rca`] — is the injected root cause ranked in the top-k
//!   of the five-step RCA comparison?
//! * [`score::score_drift`] — does an incremental [`sieve_core::session::AnalysisSession`]
//!   track every scripted edge flip within a bounded number of epochs?
//! * [`score::score_autoscale`] — does the autoscaling engine react to each
//!   scripted burst within a bounded tick lag?
//! * [`score::score_clusters`] — how close is the chosen `k` to the true
//!   per-component family count?
//!
//! The [`matrix`] module names a small catalogue of scenarios (steady
//! diurnal, Poisson regime change, edge drift, root cause, dropout+skew,
//! kitchen sink) that the regression suite runs across seeds, asserting
//! score thresholds plus streamed==batch and parallelism-invariance
//! equalities. Everything is deterministic from `(spec, seed)` — same seed,
//! bitwise-identical stream and truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod matrix;
pub mod runner;
pub mod score;
pub mod spec;
pub mod truth;

mod error;

pub use engine::{generate, EpochData, ScenarioData};
pub use error::ScenarioError;
pub use matrix::{scenario_matrix, smoke_matrix, ScenarioCase};
pub use runner::{run_autoscale, run_batch, run_served, run_streamed};
pub use score::{
    score_autoscale, score_clusters, score_drift, score_rca, AutoscaleScore, ClusterScore,
    DriftOutcome, DriftScore, RcaScore,
};
pub use spec::{ScenarioAction, ScenarioSpec, ScriptedEvent, WorkloadPlan};
pub use truth::{EdgeFlip, EpochTruth, GroundTruth};

/// Convenient result alias for scenario operations.
pub type Result<T> = std::result::Result<T, ScenarioError>;
