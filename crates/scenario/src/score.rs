//! Scoring harnesses: grade pipeline answers against the ground truth.

use crate::truth::GroundTruth;
use sieve_autoscale::AutoscalingReport;
use sieve_core::model::SieveModel;
use sieve_exec::Name;
use sieve_rca::{RcaConfig, RcaEngine, RcaReport};
use sieve_simulator::workload::Burst;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The RCA grade of one run: where the injected root cause landed in the
/// five-step comparison's final ranking.
#[derive(Debug, Clone)]
pub struct RcaScore {
    /// The true root-cause component.
    pub component: Name,
    /// Its 1-based rank in the final ranking, if it survived the filters.
    pub rank: Option<usize>,
    /// The top-k bound the run is graded against.
    pub top_k: usize,
    /// The full report, for diagnostics.
    pub report: RcaReport,
}

impl RcaScore {
    /// Whether the true root cause ranked within the top-k.
    pub fn hit(&self) -> bool {
        self.rank.is_some_and(|r| r <= self.top_k)
    }
}

/// Grades root-cause analysis: compares the last pre-fault model (correct
/// version) against the final model (faulty version) and locates the
/// injected component in the final ranking.
///
/// Returns `None` when the scenario injects no fault, or injects it at
/// epoch 0 (no pre-fault baseline exists).
pub fn score_rca(
    models: &[Arc<SieveModel>],
    truth: &GroundTruth,
    config: RcaConfig,
    top_k: usize,
) -> Option<RcaScore> {
    let component = truth.root_cause.clone()?;
    let fault_epoch = truth.fault_epoch?;
    if fault_epoch == 0 || fault_epoch > models.len() || models.is_empty() {
        return None;
    }
    let correct = &models[fault_epoch - 1];
    let faulty = models.last()?;
    let report = RcaEngine::new(config).compare(correct, faulty);
    let rank = report.rank_of(component.as_str());
    Some(RcaScore {
        component,
        rank,
        top_k,
        report,
    })
}

/// The tracking outcome of one scripted dependency flip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftOutcome {
    /// Calling component.
    pub caller: Name,
    /// Called component.
    pub callee: Name,
    /// Whether the edge appeared (`true`) or disappeared (`false`).
    pub up: bool,
    /// Epoch at whose start the flip was scripted.
    pub scripted_epoch: usize,
    /// First epoch from which the model agrees with the flip *and keeps
    /// agreeing* until the pair's next flip (or the end of the run).
    pub detected_epoch: Option<usize>,
}

impl DriftOutcome {
    /// Detection lag in epochs, if detected.
    pub fn lag_epochs(&self) -> Option<usize> {
        self.detected_epoch.map(|d| d - self.scripted_epoch)
    }

    /// Whether the flip was tracked within `m` epochs.
    pub fn tracked_within(&self, m: usize) -> bool {
        self.lag_epochs().is_some_and(|lag| lag <= m)
    }
}

/// The drift grade of one run: one outcome per scripted flip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftScore {
    /// Outcomes in scripted order.
    pub outcomes: Vec<DriftOutcome>,
}

impl DriftScore {
    /// Whether every scripted flip was tracked within `m` epochs.
    pub fn all_tracked_within(&self, m: usize) -> bool {
        self.outcomes.iter().all(|o| o.tracked_within(m))
    }

    /// The worst detection lag, if every flip was detected.
    pub fn worst_lag(&self) -> Option<usize> {
        self.outcomes
            .iter()
            .map(DriftOutcome::lag_epochs)
            .collect::<Option<Vec<_>>>()
            .map(|lags| lags.into_iter().max().unwrap_or(0))
    }
}

/// The component pairs connected (in either direction) by at least one
/// dependency-graph edge of `model`.
fn connected_pairs(model: &SieveModel) -> BTreeSet<(Name, Name)> {
    let mut pairs = BTreeSet::new();
    for edge in model.dependency_graph.edges() {
        let (a, b) = edge.component_pair();
        pairs.insert((b.clone(), a.clone()));
        pairs.insert((a, b));
    }
    pairs
}

/// Grades dependency-drift tracking: for each scripted edge flip, finds
/// the first epoch from which the per-epoch models agree with the new
/// state and keep agreeing until the pair flips again.
///
/// `models[e]` must be the model produced after ingesting epoch `e`.
/// Presence is judged undirected (Granger may orient an edge either way).
pub fn score_drift(models: &[Arc<SieveModel>], truth: &GroundTruth) -> DriftScore {
    let flips = truth.edge_flips();
    let pairs_per_epoch: Vec<BTreeSet<(Name, Name)>> =
        models.iter().map(|m| connected_pairs(m)).collect();
    let outcomes = flips
        .iter()
        .map(|flip| {
            let boundary = flips
                .iter()
                .filter(|f| f.caller == flip.caller && f.callee == flip.callee)
                .map(|f| f.epoch)
                .find(|&e| e > flip.epoch)
                .unwrap_or(models.len());
            let key = (flip.caller.clone(), flip.callee.clone());
            let mut detected = None;
            for (epoch, pairs) in pairs_per_epoch
                .iter()
                .enumerate()
                .take(boundary)
                .skip(flip.epoch)
            {
                if pairs.contains(&key) == flip.up {
                    detected.get_or_insert(epoch);
                } else {
                    detected = None;
                }
            }
            DriftOutcome {
                caller: flip.caller.clone(),
                callee: flip.callee.clone(),
                up: flip.up,
                scripted_epoch: flip.epoch,
                detected_epoch: detected,
            }
        })
        .collect();
    DriftScore { outcomes }
}

/// The autoscaling grade: per scripted burst, the engine's reaction lag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoscaleScore {
    /// `(burst_start_tick, scale_out_lag_ticks)` per scripted burst.
    pub reactions: Vec<(usize, Option<usize>)>,
}

impl AutoscaleScore {
    /// Whether every burst triggered a scale-out within `max_lag` ticks.
    pub fn all_within(&self, max_lag: usize) -> bool {
        self.reactions
            .iter()
            .all(|(_, lag)| lag.is_some_and(|l| l <= max_lag))
    }
}

/// Grades autoscaling reactions against the scripted bursts.
pub fn score_autoscale(report: &AutoscalingReport, bursts: &[Burst]) -> AutoscaleScore {
    AutoscaleScore {
        reactions: bursts
            .iter()
            .map(|b| (b.start_tick, report.scale_out_lag(b.start_tick)))
            .collect(),
    }
}

/// The clustering grade: chosen `k` vs the true family count per component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterScore {
    /// `(component, true_k, chosen_k)` rows; `chosen_k` is `None` when the
    /// model has no clustering for the component.
    pub per_component: Vec<(Name, usize, Option<usize>)>,
}

impl ClusterScore {
    /// Mean absolute error of the chosen `k` over graded components
    /// (missing clusterings count as an error equal to the true `k`).
    pub fn mean_abs_error(&self) -> f64 {
        if self.per_component.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .per_component
            .iter()
            .map(|(_, true_k, chosen)| chosen.map_or(*true_k, |k| k.abs_diff(*true_k)))
            .sum();
        total as f64 / self.per_component.len() as f64
    }

    /// Number of components whose chosen `k` is within `tolerance` of the
    /// true count.
    pub fn within_tolerance(&self, tolerance: usize) -> usize {
        self.per_component
            .iter()
            .filter(|(_, true_k, chosen)| chosen.is_some_and(|k| k.abs_diff(*true_k) <= tolerance))
            .count()
    }
}

/// Grades cluster-count selection against the true per-component family
/// counts.
pub fn score_clusters(model: &SieveModel, truth: &GroundTruth) -> ClusterScore {
    ClusterScore {
        per_component: truth
            .true_cluster_counts
            .iter()
            .map(|(component, &true_k)| {
                let chosen = model
                    .clustering_of(component.as_str())
                    .map(|c| c.clusters.len());
                (component.clone(), true_k, chosen)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::EpochTruth;
    use sieve_core::model::{ComponentClustering, MetricCluster};
    use sieve_graph::{DependencyEdge, DependencyGraph};
    use std::collections::{BTreeMap, BTreeSet};

    fn model_with_pairs(pairs: &[(&str, &str)]) -> Arc<SieveModel> {
        let mut graph = DependencyGraph::new();
        for (a, b) in pairs {
            graph.add_component(*a);
            graph.add_component(*b);
            graph.add_edge(DependencyEdge {
                source_component: Name::from(*a),
                source_metric: Name::from("m"),
                target_component: Name::from(*b),
                target_metric: Name::from("m"),
                p_value: 0.01,
                f_statistic: 8.0,
                lag_ms: 500,
            });
        }
        Arc::new(SieveModel {
            application: "t".to_string(),
            clusterings: BTreeMap::new(),
            dependency_graph: graph,
        })
    }

    fn truth_with_edges(per_epoch: &[&[(&str, &str)]]) -> GroundTruth {
        GroundTruth {
            scenario: "t".to_string(),
            seed: 0,
            root_cause: None,
            fault_epoch: None,
            true_cluster_counts: BTreeMap::new(),
            epochs: per_epoch
                .iter()
                .enumerate()
                .map(|(epoch, edges)| EpochTruth {
                    epoch,
                    active_edges: edges
                        .iter()
                        .map(|(a, b)| (Name::from(*a), Name::from(*b)))
                        .collect(),
                    offline: BTreeSet::new(),
                    dropped_metrics: BTreeSet::new(),
                    clock_skew_ms: BTreeMap::new(),
                    regime_multiplier: 1.0,
                    fault_active: false,
                })
                .collect(),
        }
    }

    #[test]
    fn drift_score_finds_stable_detection_epochs() {
        // Edge (a,b) scripted up at epoch 1; the model notices at epoch 2.
        let truth = truth_with_edges(&[&[], &[("a", "b")], &[("a", "b")], &[("a", "b")]]);
        let models = vec![
            model_with_pairs(&[]),
            model_with_pairs(&[]),
            model_with_pairs(&[("a", "b")]),
            model_with_pairs(&[("b", "a")]), // reversed direction still counts
        ];
        let score = score_drift(&models, &truth);
        assert_eq!(score.outcomes.len(), 1);
        assert_eq!(score.outcomes[0].detected_epoch, Some(2));
        assert_eq!(score.outcomes[0].lag_epochs(), Some(1));
        assert!(score.all_tracked_within(1));
        assert!(!score.all_tracked_within(0));
        assert_eq!(score.worst_lag(), Some(1));
    }

    #[test]
    fn drift_score_requires_stability_and_respects_reflips() {
        // Up at 1, back down at 3: detection must hold within [1, 3).
        let truth = truth_with_edges(&[&[], &[("a", "b")], &[("a", "b")], &[]]);
        let flapping = vec![
            model_with_pairs(&[]),
            model_with_pairs(&[("a", "b")]),
            model_with_pairs(&[]), // lost it again before the boundary
            model_with_pairs(&[]),
        ];
        let score = score_drift(&flapping, &truth);
        let up = score.outcomes.iter().find(|o| o.up).unwrap();
        assert_eq!(up.detected_epoch, None);
        let down = score.outcomes.iter().find(|o| !o.up).unwrap();
        // The down-flip at epoch 3 is immediately consistent.
        assert_eq!(down.detected_epoch, Some(3));
        assert!(score.worst_lag().is_none());
    }

    #[test]
    fn cluster_score_measures_k_error() {
        let mut clusterings = BTreeMap::new();
        let members: Vec<Name> = vec![Name::from("x")];
        clusterings.insert(
            Name::from("a"),
            ComponentClustering {
                component: Name::from("a"),
                total_metrics: 4,
                filtered_metrics: vec![],
                clusters: vec![
                    MetricCluster {
                        members: members.clone(),
                        representative: Name::from("x"),
                        representative_distance: 0.0,
                    },
                    MetricCluster {
                        members,
                        representative: Name::from("y"),
                        representative_distance: 0.0,
                    },
                ],
                silhouette: 0.5,
                chosen_k: 2,
            },
        );
        let model = SieveModel {
            application: "t".to_string(),
            clusterings,
            dependency_graph: DependencyGraph::new(),
        };
        let mut truth = truth_with_edges(&[&[]]);
        truth.true_cluster_counts.insert(Name::from("a"), 3);
        truth.true_cluster_counts.insert(Name::from("b"), 2);
        let score = score_clusters(&model, &truth);
        assert_eq!(score.per_component.len(), 2);
        // |2-3| = 1 for a; b missing counts as 2. Mean = 1.5.
        assert!((score.mean_abs_error() - 1.5).abs() < 1e-12);
        assert_eq!(score.within_tolerance(1), 1);
    }
}
