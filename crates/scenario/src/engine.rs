//! The scenario generator: a seeded discrete-event run of the simulator
//! under a scripted adversarial timeline.
//!
//! [`generate`] drives one [`Simulation`] for `epochs * ticks_per_epoch`
//! ticks, applying scripted actions at epoch boundaries and recording the
//! *offered* metric stream through
//! [`Simulation::step_observed`] — the same stream any store (windowed,
//! durable, sharded) would see, so every downstream consumer can replay it
//! bit-identically. Alongside the stream it assembles the per-epoch
//! [`CallGraph`] handed to the analysis and the [`GroundTruth`] answer
//! sheet the scores grade against.

use crate::spec::{ScenarioAction, ScenarioSpec};
use crate::truth::{EpochTruth, GroundTruth};
use crate::Result;
use sieve_exec::Name;
use sieve_graph::CallGraph;
use sieve_serve::MetricPoint;
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::store::{MetricId, RetentionPolicy};
use std::collections::{BTreeMap, BTreeSet};

/// Everything one analysis epoch consumes, plus its slice of the truth.
#[derive(Debug, Clone)]
pub struct EpochData {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// The metric points offered to monitoring during the epoch, in
    /// emission order.
    pub points: Vec<MetricPoint>,
    /// The call graph in force during the epoch (scripted-active edges
    /// between online components).
    pub call_graph: CallGraph,
    /// The true state of the world during the epoch.
    pub truth: EpochTruth,
}

/// A complete generated scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// Scenario (and tenant/application) name.
    pub name: String,
    /// The run seed.
    pub seed: u64,
    /// Milliseconds per tick.
    pub tick_ms: u64,
    /// Ticks per epoch.
    pub ticks_per_epoch: usize,
    /// The retention policy the scenario was designed for.
    pub retention: RetentionPolicy,
    /// Per-epoch data in order.
    pub epochs: Vec<EpochData>,
    /// The answer sheet.
    pub truth: GroundTruth,
}

impl ScenarioData {
    /// All metric points across epochs, in emission order.
    pub fn all_points(&self) -> impl Iterator<Item = &MetricPoint> {
        self.epochs.iter().flat_map(|e| e.points.iter())
    }

    /// Total number of offered points.
    pub fn point_count(&self) -> usize {
        self.epochs.iter().map(|e| e.points.len()).sum()
    }

    /// The call graph of the final epoch.
    pub fn final_call_graph(&self) -> &CallGraph {
        &self
            .epochs
            .last()
            .expect("a validated scenario has at least one epoch")
            .call_graph
    }

    /// An order-sensitive FNV-style fingerprint of the full metric stream
    /// (series identity, timestamps and exact value bits) plus each
    /// epoch's call-graph edges — two runs with equal fingerprints offered
    /// bitwise-identical data to monitoring.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for epoch in &self.epochs {
            for p in &epoch.points {
                eat(p.id.component.as_str().as_bytes());
                eat(&[0xfe]);
                eat(p.id.metric.as_str().as_bytes());
                eat(&p.timestamp_ms.to_le_bytes());
                eat(&p.value.to_bits().to_le_bytes());
            }
            for (from, to, count) in epoch.call_graph.edges() {
                eat(from.as_str().as_bytes());
                eat(&[0xfd]);
                eat(to.as_str().as_bytes());
                eat(&count.to_le_bytes());
            }
        }
        h
    }
}

/// Generates one seeded scenario run: the metric stream, the per-epoch
/// call graphs and the ground truth.
///
/// # Errors
///
/// Returns an error when the spec does not validate or a scripted action
/// is rejected by the simulator.
pub fn generate(spec: &ScenarioSpec, seed: u64) -> Result<ScenarioData> {
    spec.validate()?;
    let workload = spec.workload.instantiate(spec.total_ticks(), seed);
    let sim_config = SimConfig::new(seed)
        .with_tick_ms(spec.tick_ms)
        .with_duration_ms(spec.duration_ms());
    let mut sim = Simulation::new(spec.app.clone(), workload, sim_config)?;

    // Scripted edge state, keyed by (caller, callee).
    let mut edge_enabled: BTreeMap<(String, String), bool> = spec
        .app
        .calls()
        .iter()
        .map(|c| ((c.caller.clone(), c.callee.clone()), true))
        .collect();
    for (caller, callee) in &spec.initially_inactive {
        edge_enabled.insert((caller.clone(), callee.clone()), false);
        sim.set_call_enabled(caller, callee, false)?;
    }

    let mut offline: BTreeSet<String> = BTreeSet::new();
    let mut dropped: BTreeSet<(String, String)> = BTreeSet::new();
    let mut skew: BTreeMap<String, i64> = BTreeMap::new();
    let mut regime = 1.0_f64;
    let mut root_cause: Option<Name> = None;
    let mut fault_epoch: Option<usize> = None;
    let mut fault_active = false;

    let mut epochs = Vec::with_capacity(spec.epochs);
    for epoch in 0..spec.epochs {
        for action in spec.events_at(epoch) {
            match action {
                ScenarioAction::EdgeUp { caller, callee } => {
                    sim.set_call_enabled(caller, callee, true)?;
                    edge_enabled.insert((caller.clone(), callee.clone()), true);
                }
                ScenarioAction::EdgeDown { caller, callee } => {
                    sim.set_call_enabled(caller, callee, false)?;
                    edge_enabled.insert((caller.clone(), callee.clone()), false);
                }
                ScenarioAction::Crash { component } => {
                    sim.set_component_online(component, false)?;
                    offline.insert(component.clone());
                }
                ScenarioAction::Restore { component } => {
                    sim.set_component_online(component, true)?;
                    offline.remove(component);
                }
                ScenarioAction::DropMetric { component, metric } => {
                    sim.set_metric_enabled(component, metric, false)?;
                    dropped.insert((component.clone(), metric.clone()));
                }
                ScenarioAction::RestoreMetric { component, metric } => {
                    sim.set_metric_enabled(component, metric, true)?;
                    dropped.remove(&(component.clone(), metric.clone()));
                }
                ScenarioAction::ClockSkew { component, skew_ms } => {
                    sim.set_clock_skew_ms(component, *skew_ms)?;
                    if *skew_ms == 0 {
                        skew.remove(component);
                    } else {
                        skew.insert(component.clone(), *skew_ms);
                    }
                }
                ScenarioAction::RegimeChange { multiplier } => {
                    sim.set_rate_multiplier(*multiplier);
                    regime = *multiplier;
                }
                ScenarioAction::InjectFault { component, fault } => {
                    sim.apply_faults(fault)?;
                    if root_cause.is_none() {
                        root_cause = Some(Name::from(component.as_str()));
                        fault_epoch = Some(epoch);
                    }
                    fault_active = true;
                }
            }
        }

        let mut points = Vec::new();
        for _ in 0..spec.ticks_per_epoch {
            sim.step_observed(|id, timestamp_ms, value| {
                points.push(MetricPoint {
                    id: id.clone(),
                    timestamp_ms,
                    value,
                });
            });
        }

        let mut call_graph = CallGraph::new();
        for name in spec.app.component_names() {
            call_graph.add_component(name);
        }
        for ((caller, callee), enabled) in &edge_enabled {
            if *enabled && !offline.contains(caller) && !offline.contains(callee) {
                call_graph.record_calls(
                    caller.as_str(),
                    callee.as_str(),
                    spec.ticks_per_epoch as u64,
                );
            }
        }

        let truth = EpochTruth {
            epoch,
            active_edges: edge_enabled
                .iter()
                .filter(|(_, &enabled)| enabled)
                .map(|((caller, callee), _)| {
                    (Name::from(caller.as_str()), Name::from(callee.as_str()))
                })
                .collect(),
            offline: offline.iter().map(|c| Name::from(c.as_str())).collect(),
            dropped_metrics: dropped
                .iter()
                .map(|(c, m)| MetricId::new(c.as_str(), m.as_str()))
                .collect(),
            clock_skew_ms: skew
                .iter()
                .map(|(c, &s)| (Name::from(c.as_str()), s))
                .collect(),
            regime_multiplier: regime,
            fault_active,
        };

        epochs.push(EpochData {
            epoch,
            points,
            call_graph,
            truth,
        });
    }

    let truth = GroundTruth {
        scenario: spec.name.clone(),
        seed,
        root_cause,
        fault_epoch,
        true_cluster_counts: spec
            .true_cluster_counts
            .iter()
            .map(|(c, &k)| (Name::from(c.as_str()), k))
            .collect(),
        epochs: epochs.iter().map(|e| e.truth.clone()).collect(),
    };

    Ok(ScenarioData {
        name: spec.name.clone(),
        seed,
        tick_ms: spec.tick_ms,
        ticks_per_epoch: spec.ticks_per_epoch,
        retention: spec.retention(),
        epochs,
        truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ScriptedEvent, WorkloadPlan};
    use sieve_apps::chaos::{chaos_app, SVC_A, SVC_B, WORKER};
    use sieve_apps::MetricRichness;

    fn drift_spec() -> ScenarioSpec {
        let chaos = chaos_app(MetricRichness::Minimal);
        ScenarioSpec {
            name: "engine-test".to_string(),
            app: chaos.spec,
            true_cluster_counts: chaos.true_cluster_counts,
            workload: WorkloadPlan::Oscillating {
                base: 40.0,
                amplitude: 14.0,
                period_ticks: 12,
                noise: 0.2,
            },
            epochs: 4,
            ticks_per_epoch: 6,
            tick_ms: 500,
            window_epochs: 2,
            initially_inactive: vec![(SVC_B.to_string(), WORKER.to_string())],
            events: vec![
                ScriptedEvent::at(
                    1,
                    ScenarioAction::EdgeUp {
                        caller: SVC_B.to_string(),
                        callee: WORKER.to_string(),
                    },
                ),
                ScriptedEvent::at(
                    2,
                    ScenarioAction::Crash {
                        component: WORKER.to_string(),
                    },
                ),
                ScriptedEvent::at(
                    3,
                    ScenarioAction::Restore {
                        component: WORKER.to_string(),
                    },
                ),
            ],
        }
    }

    #[test]
    fn generate_reflects_the_script_in_graphs_and_truth() {
        let data = generate(&drift_spec(), 42).unwrap();
        assert_eq!(data.epochs.len(), 4);
        // Epoch 0: drift edge inactive; epoch 1: active.
        assert!(!data.epochs[0].call_graph.has_edge(SVC_B, WORKER));
        assert!(data.epochs[1].call_graph.has_edge(SVC_B, WORKER));
        // Epoch 2: worker crashed — its edges leave the call graph, but the
        // scripted edge state (the drift truth) still lists it as active.
        assert!(!data.epochs[2].call_graph.has_edge(SVC_B, WORKER));
        assert!(!data.epochs[2].call_graph.has_edge(SVC_A, WORKER));
        let key = (Name::from(SVC_B), Name::from(WORKER));
        assert!(data.epochs[2].truth.active_edges.contains(&key));
        assert!(data.epochs[2].truth.offline.contains(&Name::from(WORKER)));
        // Epoch 3: restored.
        assert!(data.epochs[3].call_graph.has_edge(SVC_B, WORKER));
        assert!(data.epochs[3].truth.offline.is_empty());
        // The crashed epoch offers no worker points.
        assert!(data.epochs[2]
            .points
            .iter()
            .all(|p| p.id.component != WORKER));
        assert!(data.epochs[3]
            .points
            .iter()
            .any(|p| p.id.component == WORKER));
        // The single scripted flip is derived from the truth.
        let flips = data.truth.edge_flips();
        assert_eq!(flips.len(), 1);
        assert!(flips[0].up);
        assert_eq!(flips[0].epoch, 1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = drift_spec();
        let a = generate(&spec, 7).unwrap();
        let b = generate(&spec, 7).unwrap();
        let c = generate(&spec, 8).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.truth, b.truth);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(a.point_count() > 0);
        assert_eq!(a.point_count(), a.all_points().count());
    }
}
