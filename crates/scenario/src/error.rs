//! Error type for the scenario engine.

use sieve_core::SieveError;
use sieve_serve::ServeError;
use sieve_simulator::SimulatorError;

/// Errors produced while generating, running or scoring a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The scenario specification is inconsistent.
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// An error bubbled up from the simulator substrate.
    Simulator(SimulatorError),
    /// An error bubbled up from the analysis pipeline.
    Pipeline(SieveError),
    /// An error bubbled up from the serving layer.
    Serve(ServeError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidSpec { reason } => {
                write!(f, "invalid scenario spec: {reason}")
            }
            ScenarioError::Simulator(e) => write!(f, "simulator error: {e}"),
            ScenarioError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ScenarioError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::InvalidSpec { .. } => None,
            ScenarioError::Simulator(e) => Some(e),
            ScenarioError::Pipeline(e) => Some(e),
            ScenarioError::Serve(e) => Some(e),
        }
    }
}

impl From<SimulatorError> for ScenarioError {
    fn from(e: SimulatorError) -> Self {
        ScenarioError::Simulator(e)
    }
}

impl From<SieveError> for ScenarioError {
    fn from(e: SieveError) -> Self {
        ScenarioError::Pipeline(e)
    }
}

impl From<ServeError> for ScenarioError {
    fn from(e: ServeError) -> Self {
        ScenarioError::Serve(e)
    }
}

impl ScenarioError {
    /// Shorthand for an [`ScenarioError::InvalidSpec`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        ScenarioError::InvalidSpec {
            reason: reason.into(),
        }
    }
}
