//! Ground truth: the answer sheet a scenario run is scored against.

use sieve_exec::Name;
use sieve_simulator::store::MetricId;
use std::collections::{BTreeMap, BTreeSet};

/// The true state of the world during one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTruth {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Scripted-active call edges (`caller -> callee`), independent of
    /// crashes — drift scoring grades tracking of *these* flips.
    pub active_edges: BTreeSet<(Name, Name)>,
    /// Components offline (crashed) during the epoch.
    pub offline: BTreeSet<Name>,
    /// Metrics whose exporter is down during the epoch.
    pub dropped_metrics: BTreeSet<MetricId>,
    /// Per-component monitoring-clock skew in milliseconds.
    pub clock_skew_ms: BTreeMap<Name, i64>,
    /// Workload multiplier in force (1.0 = nominal regime).
    pub regime_multiplier: f64,
    /// Whether the injected fault is active during this epoch.
    pub fault_active: bool,
}

/// One scripted dependency flip, derived from consecutive epoch truths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeFlip {
    /// Epoch at whose start the flip happened.
    pub epoch: usize,
    /// Calling component.
    pub caller: Name,
    /// Called component.
    pub callee: Name,
    /// `true` if the edge appeared, `false` if it disappeared.
    pub up: bool,
}

/// The complete answer sheet of one seeded run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Scenario name.
    pub scenario: String,
    /// The run seed.
    pub seed: u64,
    /// The true root-cause component, if the script injects a fault.
    pub root_cause: Option<Name>,
    /// Epoch at whose start the fault was injected.
    pub fault_epoch: Option<usize>,
    /// True number of behaviourally distinct metric families per component.
    pub true_cluster_counts: BTreeMap<Name, usize>,
    /// Per-epoch truth, one entry per epoch in order.
    pub epochs: Vec<EpochTruth>,
}

impl GroundTruth {
    /// The scripted edge flips: differences between consecutive epochs'
    /// `active_edges` sets (the initial epoch-0 state is not a flip).
    pub fn edge_flips(&self) -> Vec<EdgeFlip> {
        let mut flips = Vec::new();
        for window in self.epochs.windows(2) {
            let (prev, next) = (&window[0], &window[1]);
            for edge in next.active_edges.difference(&prev.active_edges) {
                flips.push(EdgeFlip {
                    epoch: next.epoch,
                    caller: edge.0.clone(),
                    callee: edge.1.clone(),
                    up: true,
                });
            }
            for edge in prev.active_edges.difference(&next.active_edges) {
                flips.push(EdgeFlip {
                    epoch: next.epoch,
                    caller: edge.0.clone(),
                    callee: edge.1.clone(),
                    up: false,
                });
            }
        }
        flips
    }

    /// The truth for one epoch, if in range.
    pub fn epoch(&self, epoch: usize) -> Option<&EpochTruth> {
        self.epochs.get(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(epoch: usize, edges: &[(&str, &str)]) -> EpochTruth {
        EpochTruth {
            epoch,
            active_edges: edges
                .iter()
                .map(|(a, b)| (Name::from(*a), Name::from(*b)))
                .collect(),
            offline: BTreeSet::new(),
            dropped_metrics: BTreeSet::new(),
            clock_skew_ms: BTreeMap::new(),
            regime_multiplier: 1.0,
            fault_active: false,
        }
    }

    #[test]
    fn edge_flips_are_derived_from_consecutive_epochs() {
        let truth = GroundTruth {
            scenario: "t".to_string(),
            seed: 1,
            root_cause: None,
            fault_epoch: None,
            true_cluster_counts: BTreeMap::new(),
            epochs: vec![
                epoch(0, &[("a", "b")]),
                epoch(1, &[("a", "b"), ("b", "c")]),
                epoch(2, &[("b", "c")]),
                epoch(3, &[("b", "c")]),
            ],
        };
        let flips = truth.edge_flips();
        assert_eq!(flips.len(), 2);
        assert_eq!(
            flips[0],
            EdgeFlip {
                epoch: 1,
                caller: Name::from("b"),
                callee: Name::from("c"),
                up: true,
            }
        );
        assert_eq!(
            flips[1],
            EdgeFlip {
                epoch: 2,
                caller: Name::from("a"),
                callee: Name::from("b"),
                up: false,
            }
        );
        assert!(truth.epoch(3).is_some());
        assert!(truth.epoch(4).is_none());
    }
}
