//! Scenario specifications: the script an adversarial run follows.
//!
//! A [`ScenarioSpec`] is seed-free — it names the application, the workload
//! *plan* (instantiated with a concrete seed at generation time) and the
//! scripted events per epoch. One spec plus many seeds yields a matrix of
//! deterministic runs.

use crate::{Result, ScenarioError};
use sieve_core::config::SieveConfig;
use sieve_simulator::app::AppSpec;
use sieve_simulator::fault::FaultScenario;
use sieve_simulator::store::RetentionPolicy;
use sieve_simulator::workload::{Burst, Workload};
use std::collections::BTreeMap;

/// A seed-free workload plan, instantiated into a concrete
/// [`Workload`] once the run seed is known.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadPlan {
    /// Smooth sinusoidal load with deterministic noise.
    Oscillating {
        /// Baseline requests per tick.
        base: f64,
        /// Amplitude of the oscillation.
        amplitude: f64,
        /// Period in ticks.
        period_ticks: usize,
        /// Relative noise amplitude.
        noise: f64,
    },
    /// Bursty M/M/c-style arrivals: per-tick counts drawn from a Poisson
    /// distribution.
    Poisson {
        /// Mean arrivals per tick.
        lambda_per_tick: f64,
    },
    /// Diurnal sine-modulated Poisson arrivals with scripted load bursts —
    /// the bursts double as the autoscaling ground truth.
    DiurnalBursts {
        /// Baseline mean arrivals per tick.
        base: f64,
        /// Relative amplitude of the diurnal curve.
        relative_amplitude: f64,
        /// Diurnal period in ticks.
        period_ticks: usize,
        /// Scripted bursts (ground truth for [`crate::score::score_autoscale`]).
        bursts: Vec<Burst>,
    },
}

impl WorkloadPlan {
    /// Instantiates the plan into a concrete workload for one seeded run.
    pub fn instantiate(&self, total_ticks: usize, seed: u64) -> Workload {
        match self {
            WorkloadPlan::Oscillating {
                base,
                amplitude,
                period_ticks,
                noise,
            } => Workload::Oscillating {
                base: *base,
                amplitude: *amplitude,
                period_ticks: *period_ticks,
                noise: *noise,
                seed,
            },
            WorkloadPlan::Poisson { lambda_per_tick } => Workload::poisson(*lambda_per_tick, seed),
            WorkloadPlan::DiurnalBursts {
                base,
                relative_amplitude,
                period_ticks,
                bursts,
            } => Workload::diurnal_bursts(
                total_ticks,
                *base,
                *relative_amplitude,
                *period_ticks,
                bursts,
                seed,
            ),
        }
    }

    /// The scripted bursts, if the plan has any.
    pub fn bursts(&self) -> &[Burst] {
        match self {
            WorkloadPlan::DiurnalBursts { bursts, .. } => bursts,
            _ => &[],
        }
    }
}

/// One scripted action, applied at the *start* of its epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioAction {
    /// Enable a call edge (dependency appears).
    EdgeUp {
        /// Calling component.
        caller: String,
        /// Called component.
        callee: String,
    },
    /// Disable a call edge (dependency disappears).
    EdgeDown {
        /// Calling component.
        caller: String,
        /// Called component.
        callee: String,
    },
    /// Crash a component: it stops exporting metrics and serving calls.
    Crash {
        /// The crashed component.
        component: String,
    },
    /// Restore a crashed component.
    Restore {
        /// The restored component.
        component: String,
    },
    /// A metric exporter dies: the series stops reporting.
    DropMetric {
        /// Component exporting the metric.
        component: String,
        /// The dropped metric.
        metric: String,
    },
    /// The metric exporter comes back.
    RestoreMetric {
        /// Component exporting the metric.
        component: String,
        /// The restored metric.
        metric: String,
    },
    /// Skew a component's monitoring clock (0 removes the skew; a removal
    /// makes the store drop reports until real time catches up — the
    /// adversarial part).
    ClockSkew {
        /// The skewed component.
        component: String,
        /// Skew in milliseconds (positive = clock runs ahead).
        skew_ms: i64,
    },
    /// Change the load regime: multiply the offered workload.
    RegimeChange {
        /// Multiplier applied to the workload rate (1.0 = nominal).
        multiplier: f64,
    },
    /// Inject a fault scenario and record `component` as the true root
    /// cause of the run.
    InjectFault {
        /// The component the fault blames (the RCA ground truth).
        component: String,
        /// The fault to apply to the live simulation.
        fault: FaultScenario,
    },
}

/// An action scheduled at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedEvent {
    /// Epoch (0-based) at whose start the action fires.
    pub epoch: usize,
    /// The action.
    pub action: ScenarioAction,
}

impl ScriptedEvent {
    /// Creates a scheduled event.
    pub fn at(epoch: usize, action: ScenarioAction) -> Self {
        Self { epoch, action }
    }
}

/// A complete scenario script.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario (and tenant/application) name.
    pub name: String,
    /// The application under test; lists every *potential* call edge.
    pub app: AppSpec,
    /// True number of behaviourally distinct metric families per component.
    pub true_cluster_counts: BTreeMap<String, usize>,
    /// The workload plan.
    pub workload: WorkloadPlan,
    /// Number of analysis epochs.
    pub epochs: usize,
    /// Simulation ticks per epoch.
    pub ticks_per_epoch: usize,
    /// Milliseconds per tick (also the analysis sampling interval).
    pub tick_ms: u64,
    /// Ring-window retention, in epochs of raw points.
    pub window_epochs: usize,
    /// Call edges disabled before the first tick (drift scenarios flip
    /// them on later).
    pub initially_inactive: Vec<(String, String)>,
    /// The scripted events.
    pub events: Vec<ScriptedEvent>,
}

impl ScenarioSpec {
    /// Total simulated ticks.
    pub fn total_ticks(&self) -> usize {
        self.epochs * self.ticks_per_epoch
    }

    /// Total simulated duration in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.total_ticks() as u64 * self.tick_ms
    }

    /// The ring-window retention policy of the run.
    pub fn retention(&self) -> RetentionPolicy {
        RetentionPolicy::windowed(self.window_epochs.max(1) * self.ticks_per_epoch)
    }

    /// The analysis configuration matching this scenario's cadence.
    pub fn analysis_config(&self, parallelism: usize) -> SieveConfig {
        SieveConfig::default()
            .with_interval_ms(self.tick_ms)
            .with_retention(self.retention())
            .with_parallelism(parallelism)
    }

    /// The scripted bursts (autoscaling ground truth), if any.
    pub fn bursts(&self) -> &[Burst] {
        self.workload.bursts()
    }

    /// The scripted root cause: `(component, epoch)` of the first
    /// [`ScenarioAction::InjectFault`], if the script has one.
    pub fn root_cause(&self) -> Option<(&str, usize)> {
        self.events.iter().find_map(|e| match &e.action {
            ScenarioAction::InjectFault { component, .. } => Some((component.as_str(), e.epoch)),
            _ => None,
        })
    }

    /// The actions scheduled at `epoch`, in script order.
    pub fn events_at(&self, epoch: usize) -> impl Iterator<Item = &ScenarioAction> {
        self.events
            .iter()
            .filter(move |e| e.epoch == epoch)
            .map(|e| &e.action)
    }

    /// Validates the script against the application.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`] when the shape is degenerate,
    /// an event references an unknown component/metric/edge, or a fault is
    /// injected at epoch 0 (no pre-fault baseline would exist).
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.ticks_per_epoch < 2 || self.tick_ms == 0 {
            return Err(ScenarioError::invalid(
                "scenario needs at least one epoch, two ticks per epoch and a nonzero tick",
            ));
        }
        if self.window_epochs == 0 {
            return Err(ScenarioError::invalid("window_epochs must be positive"));
        }
        self.app
            .validate()
            .map_err(|e| ScenarioError::invalid(format!("application spec: {e}")))?;
        for (caller, callee) in &self.initially_inactive {
            self.require_edge(caller, callee)?;
        }
        for event in &self.events {
            if event.epoch >= self.epochs {
                return Err(ScenarioError::invalid(format!(
                    "event scheduled at epoch {} but the scenario has {}",
                    event.epoch, self.epochs
                )));
            }
            match &event.action {
                ScenarioAction::EdgeUp { caller, callee }
                | ScenarioAction::EdgeDown { caller, callee } => {
                    self.require_edge(caller, callee)?;
                }
                ScenarioAction::Crash { component } | ScenarioAction::Restore { component } => {
                    self.require_component(component)?;
                }
                ScenarioAction::DropMetric { component, metric }
                | ScenarioAction::RestoreMetric { component, metric } => {
                    let spec = self.require_component(component)?;
                    if !spec.metrics.iter().any(|m| m.name == *metric) {
                        return Err(ScenarioError::invalid(format!(
                            "component {component} has no metric {metric}"
                        )));
                    }
                }
                ScenarioAction::ClockSkew { component, .. } => {
                    self.require_component(component)?;
                }
                ScenarioAction::RegimeChange { multiplier } => {
                    if !multiplier.is_finite() || *multiplier < 0.0 {
                        return Err(ScenarioError::invalid(
                            "regime multiplier must be finite and non-negative",
                        ));
                    }
                }
                ScenarioAction::InjectFault { component, .. } => {
                    self.require_component(component)?;
                    if event.epoch == 0 {
                        return Err(ScenarioError::invalid(
                            "a fault at epoch 0 leaves no pre-fault baseline to compare against",
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn require_component(&self, name: &str) -> Result<&sieve_simulator::app::ComponentSpec> {
        self.app
            .component(name)
            .ok_or_else(|| ScenarioError::invalid(format!("unknown component {name}")))
    }

    fn require_edge(&self, caller: &str, callee: &str) -> Result<()> {
        if self
            .app
            .calls()
            .iter()
            .any(|c| c.caller == caller && c.callee == callee)
        {
            Ok(())
        } else {
            Err(ScenarioError::invalid(format!(
                "the application has no call edge {caller} -> {callee}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_apps::chaos::{chaos_app, root_cause_fault, SVC_A, SVC_B, WORKER};
    use sieve_apps::MetricRichness;

    fn base_spec() -> ScenarioSpec {
        let chaos = chaos_app(MetricRichness::Minimal);
        ScenarioSpec {
            name: "spec-test".to_string(),
            app: chaos.spec,
            true_cluster_counts: chaos.true_cluster_counts,
            workload: WorkloadPlan::Oscillating {
                base: 40.0,
                amplitude: 14.0,
                period_ticks: 12,
                noise: 0.2,
            },
            epochs: 4,
            ticks_per_epoch: 8,
            tick_ms: 500,
            window_epochs: 2,
            initially_inactive: vec![(SVC_B.to_string(), WORKER.to_string())],
            events: vec![ScriptedEvent::at(
                2,
                ScenarioAction::InjectFault {
                    component: SVC_A.to_string(),
                    fault: root_cause_fault(SVC_A),
                },
            )],
        }
    }

    #[test]
    fn a_well_formed_spec_validates_and_exposes_its_shape() {
        let spec = base_spec();
        spec.validate().unwrap();
        assert_eq!(spec.total_ticks(), 32);
        assert_eq!(spec.duration_ms(), 16_000);
        assert_eq!(spec.retention().raw_capacity, Some(16));
        assert_eq!(spec.root_cause(), Some((SVC_A, 2)));
        assert_eq!(spec.events_at(2).count(), 1);
        assert_eq!(spec.events_at(0).count(), 0);
        assert!(spec.bursts().is_empty());
        let config = spec.analysis_config(4);
        assert_eq!(config.interval_ms, 500);
        assert_eq!(config.parallelism, 4);
        assert_eq!(config.retention.raw_capacity, Some(16));
    }

    #[test]
    fn validation_rejects_bad_scripts() {
        let mut late = base_spec();
        late.events[0].epoch = 9;
        assert!(late.validate().is_err());

        let mut early_fault = base_spec();
        early_fault.events[0].epoch = 0;
        assert!(early_fault.validate().is_err());

        let mut unknown_edge = base_spec();
        unknown_edge
            .initially_inactive
            .push(("db".to_string(), "gateway".to_string()));
        assert!(unknown_edge.validate().is_err());

        let mut unknown_metric = base_spec();
        unknown_metric.events.push(ScriptedEvent::at(
            1,
            ScenarioAction::DropMetric {
                component: WORKER.to_string(),
                metric: "nope".to_string(),
            },
        ));
        assert!(unknown_metric.validate().is_err());

        let mut bad_regime = base_spec();
        bad_regime.events.push(ScriptedEvent::at(
            1,
            ScenarioAction::RegimeChange {
                multiplier: f64::NAN,
            },
        ));
        assert!(bad_regime.validate().is_err());
    }

    #[test]
    fn workload_plans_instantiate_deterministically() {
        let plans = [
            WorkloadPlan::Oscillating {
                base: 40.0,
                amplitude: 10.0,
                period_ticks: 12,
                noise: 0.1,
            },
            WorkloadPlan::Poisson {
                lambda_per_tick: 30.0,
            },
            WorkloadPlan::DiurnalBursts {
                base: 30.0,
                relative_amplitude: 0.3,
                period_ticks: 24,
                bursts: vec![Burst::new(10, 6, 120.0)],
            },
        ];
        for plan in &plans {
            let a = plan.instantiate(48, 7);
            let b = plan.instantiate(48, 7);
            assert_eq!(a, b, "same seed must instantiate identically");
            for t in 0..48 {
                assert!(a.rate_at(t, 48).is_finite());
            }
        }
        assert_eq!(plans[2].bursts().len(), 1);
    }
}
