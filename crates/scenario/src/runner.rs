//! Scenario runners: feed a generated stream through the pipeline's three
//! ingestion paths.
//!
//! * [`run_streamed`] — an incremental [`AnalysisSession`] over a shared
//!   windowed store, one delta per epoch (the serving layer's machinery,
//!   driven directly);
//! * [`run_served`] — the full multi-tenant [`SieveService`] front door
//!   (ingest → per-epoch call-graph swap → sweep);
//! * [`run_batch`] — a from-scratch [`Sieve`] analysis over the final
//!   retained window, the determinism oracle the streamed paths must match.
//!
//! [`run_autoscale`] additionally replays the scenario's workload under the
//! autoscaling engine with a rule calibrated from a scenario model.

use crate::engine::ScenarioData;
use crate::spec::ScenarioSpec;
use crate::{Result, ScenarioError};
use sieve_autoscale::calibrate::calibrated_rule;
use sieve_autoscale::rules::select_guiding_metric;
use sieve_autoscale::{AutoscaleEngine, AutoscalingReport, SlaCondition};
use sieve_core::config::SieveConfig;
use sieve_core::model::SieveModel;
use sieve_core::pipeline::Sieve;
use sieve_core::session::AnalysisSession;
use sieve_serve::{ServeConfig, SieveService};
use sieve_simulator::engine::SimConfig;
use sieve_simulator::store::MetricStore;
use std::sync::Arc;

/// Runs the scenario through an incremental [`AnalysisSession`]: one
/// drained delta and one model per epoch, with the scripted call graph
/// swapped in at each epoch boundary.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn run_streamed(data: &ScenarioData, config: &SieveConfig) -> Result<Vec<Arc<SieveModel>>> {
    let store = MetricStore::with_retention(data.retention);
    let first_graph = data
        .epochs
        .first()
        .ok_or_else(|| ScenarioError::invalid("scenario has no epochs"))?
        .call_graph
        .clone();
    let mut session = AnalysisSession::new(&data.name, store.clone(), first_graph, config.clone())?;
    let mut models = Vec::with_capacity(data.epochs.len());
    for epoch in &data.epochs {
        store.record_batch(
            epoch
                .points
                .iter()
                .map(|p| (&p.id, p.timestamp_ms, p.value)),
        );
        session.set_call_graph(epoch.call_graph.clone());
        let delta = store.drain_delta();
        models.push(session.update_shared(&delta)?);
    }
    Ok(models)
}

/// Runs the scenario through the serving front door: a single tenant on a
/// [`SieveService`], one ingest + call-graph swap + full sweep per epoch.
///
/// The service's analysis config (and therefore parallelism and retention
/// defaults) comes from `config`; the tenant's retention is pinned to the
/// scenario's window so the served run sees the same data as
/// [`run_streamed`].
///
/// # Errors
///
/// Propagates serving-layer errors; fails if a sweep publishes no model.
pub fn run_served(data: &ScenarioData, config: ServeConfig) -> Result<Vec<Arc<SieveModel>>> {
    let service = SieveService::new(config)?;
    let first_graph = data
        .epochs
        .first()
        .ok_or_else(|| ScenarioError::invalid("scenario has no epochs"))?
        .call_graph
        .clone();
    service.create_tenant_with_retention(&data.name, first_graph, data.retention)?;
    let mut models = Vec::with_capacity(data.epochs.len());
    for epoch in &data.epochs {
        service.ingest(&data.name, &epoch.points)?;
        service.set_call_graph(&data.name, epoch.call_graph.clone())?;
        service.refresh_all()?;
        let model = service
            .model(&data.name)?
            .ok_or_else(|| ScenarioError::invalid("sweep published no model"))?;
        models.push(model);
    }
    Ok(models)
}

/// Runs a from-scratch batch analysis over the scenario's full stream
/// (under the same windowed retention) with the final epoch's call graph —
/// the oracle the final streamed model must equal.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn run_batch(data: &ScenarioData, config: &SieveConfig) -> Result<SieveModel> {
    let store = MetricStore::with_retention(data.retention);
    store.record_batch(data.all_points().map(|p| (&p.id, p.timestamp_ms, p.value)));
    let model = Sieve::new(config.clone()).analyze(&data.name, &store, data.final_call_graph())?;
    Ok(model)
}

/// Replays the scenario's workload under the autoscaling engine, with a
/// scaling rule whose guiding metric is selected from `model` (the most
/// connected metric of the dependency graph, §4.1) and whose thresholds
/// are calibrated against the given peak rate.
///
/// # Errors
///
/// Fails if the model's dependency graph is empty (no guiding metric) or
/// the simulator rejects the run.
pub fn run_autoscale(
    spec: &ScenarioSpec,
    model: &SieveModel,
    targets: Vec<String>,
    peak_rate: f64,
    seed: u64,
) -> Result<AutoscalingReport> {
    let guiding = select_guiding_metric(model).ok_or_else(|| {
        ScenarioError::invalid("the model has no dependency edges to select a guiding metric from")
    })?;
    let sla = SlaCondition {
        percentile: 90.0,
        threshold_ms: 1000.0,
    };
    let rule = calibrated_rule(&spec.app, &guiding, &sla, peak_rate, targets, seed)?
        .with_instance_bounds(1, 12)
        .with_cooldown_ticks(8);
    let engine = AutoscaleEngine::new(rule, sla)?;
    let workload = spec.workload.instantiate(spec.total_ticks(), seed);
    let config = SimConfig::new(seed)
        .with_tick_ms(spec.tick_ms)
        .with_duration_ms(spec.duration_ms());
    Ok(engine.run(&spec.app, &workload, config)?)
}
