//! Step 3: cluster novelty and similarity.
//!
//! "Clusters aggregate component metrics which exhibit similar behavior over
//! time. The clusters with new or discarded metrics should be more
//! interesting for RCA ... In addition, we track the similarity of a
//! component's clusters between C and F versions." (§4.2)
//!
//! The similarity score is the modified Jaccard coefficient of equation (2):
//! `S = |M_C ∩ M_F| / |M_C|` — normalised by the *correct* cluster only so
//! that new metrics added in the faulty cluster do not penalise the match.

use crate::metrics::MetricDiff;
use sieve_core::model::{ComponentClustering, SieveModel};
use sieve_exec::Name;
use std::collections::BTreeSet;

/// Modified Jaccard similarity between a correct-version cluster and a
/// faulty-version cluster (equation 2 of the paper).
pub fn cluster_similarity(correct_members: &[Name], faulty_members: &[Name]) -> f64 {
    if correct_members.is_empty() {
        return 0.0;
    }
    let correct: BTreeSet<&Name> = correct_members.iter().collect();
    let faulty: BTreeSet<&Name> = faulty_members.iter().collect();
    correct.intersection(&faulty).count() as f64 / correct.len() as f64
}

/// Novelty and similarity of one faulty-version (or vanished
/// correct-version) cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAssessment {
    /// Component the cluster belongs to.
    pub component: Name,
    /// Index of the cluster in the faulty version (`None` for clusters that
    /// only exist in the correct version).
    pub faulty_index: Option<usize>,
    /// Index of the best-matching cluster in the correct version, if any.
    pub matched_correct_index: Option<usize>,
    /// Similarity to that best match (0 when there is none).
    pub similarity: f64,
    /// New metrics (per step 1) that live in this cluster.
    pub new_metrics: Vec<Name>,
    /// Discarded metrics (per step 1) associated with this cluster (for
    /// vanished correct-version clusters these are their members).
    pub discarded_metrics: Vec<Name>,
    /// All members of the cluster (faulty version when present, correct
    /// version otherwise).
    pub members: Vec<Name>,
}

impl ClusterAssessment {
    /// Novelty score of the cluster: number of new + discarded metrics.
    pub fn novelty_score(&self) -> usize {
        self.new_metrics.len() + self.discarded_metrics.len()
    }

    /// Whether the cluster is considered novel under the given threshold.
    pub fn is_novel(&self, novelty_threshold: usize) -> bool {
        self.novelty_score() >= novelty_threshold.max(1)
    }
}

/// Aggregate counts over a component's clusters (one slice of Figure 7a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterNoveltyCounts {
    /// Clusters containing only new metrics (among their changed metrics).
    pub with_new_only: usize,
    /// Clusters containing only discarded metrics.
    pub with_discarded_only: usize,
    /// Clusters containing both new and discarded metrics.
    pub with_new_and_discarded: usize,
    /// Clusters whose membership changed without new/discarded metrics
    /// (metrics moved between clusters).
    pub changed_membership: usize,
    /// Total number of clusters assessed.
    pub total: usize,
}

impl ClusterNoveltyCounts {
    /// Number of clusters with at least one new or discarded metric.
    pub fn novel(&self) -> usize {
        self.with_new_only + self.with_discarded_only + self.with_new_and_discarded
    }
}

/// Assesses every cluster of one component: matches faulty clusters to their
/// most similar correct clusters, attaches the step-1 new/discarded metrics
/// and computes similarity scores. Clusters that exist only in the correct
/// version (all their metrics disappeared) are reported too.
pub fn assess_component_clusters(
    component: &str,
    correct: Option<&ComponentClustering>,
    faulty: Option<&ComponentClustering>,
    diff: &MetricDiff,
) -> Vec<ClusterAssessment> {
    let empty: Vec<sieve_core::model::MetricCluster> = Vec::new();
    let correct_clusters = correct.map(|c| c.clusters.as_slice()).unwrap_or(&empty);
    let faulty_clusters = faulty.map(|c| c.clusters.as_slice()).unwrap_or(&empty);

    let new_set: BTreeSet<&Name> = diff.new_metrics.iter().collect();
    let discarded_set: BTreeSet<&Name> = diff.discarded_metrics.iter().collect();

    let mut out = Vec::new();

    // Faulty clusters, matched against the correct version.
    for (fi, fc) in faulty_clusters.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (ci, cc) in correct_clusters.iter().enumerate() {
            let s = cluster_similarity(&cc.members, &fc.members);
            if best.map_or(true, |(_, b)| s > b) {
                best = Some((ci, s));
            }
        }
        let new_metrics: Vec<Name> = fc
            .members
            .iter()
            .filter(|m| new_set.contains(m))
            .cloned()
            .collect();
        // Discarded metrics "associated" with this cluster: metrics that
        // disappeared from its best-matching correct cluster.
        let discarded_metrics: Vec<Name> = match best {
            Some((ci, _)) => correct_clusters[ci]
                .members
                .iter()
                .filter(|m| discarded_set.contains(m))
                .cloned()
                .collect(),
            None => Vec::new(),
        };
        out.push(ClusterAssessment {
            component: component.into(),
            faulty_index: Some(fi),
            matched_correct_index: best.map(|(ci, _)| ci),
            similarity: best.map(|(_, s)| s).unwrap_or(0.0),
            new_metrics,
            discarded_metrics,
            members: fc.members.clone(),
        });
    }

    // Correct clusters that have no counterpart at all in the faulty version
    // (every member was discarded or moved).
    for cc in correct_clusters.iter() {
        let vanished = cc.members.iter().all(|m| discarded_set.contains(m));
        if vanished && !cc.members.is_empty() {
            out.push(ClusterAssessment {
                component: component.into(),
                faulty_index: None,
                matched_correct_index: None,
                similarity: 0.0,
                new_metrics: Vec::new(),
                discarded_metrics: cc.members.clone(),
                members: cc.members.clone(),
            });
        }
    }

    out
}

/// Assesses every component of two models and returns all cluster
/// assessments.
pub fn assess_all_clusters(
    correct: &SieveModel,
    faulty: &SieveModel,
    diffs: &[MetricDiff],
) -> Vec<ClusterAssessment> {
    let mut out = Vec::new();
    for diff in diffs {
        let assessments = assess_component_clusters(
            &diff.component,
            correct.clustering_of(&diff.component),
            faulty.clustering_of(&diff.component),
            diff,
        );
        out.extend(assessments);
    }
    out
}

/// Aggregates cluster assessments into the Figure 7a counts.
pub fn novelty_counts(assessments: &[ClusterAssessment]) -> ClusterNoveltyCounts {
    let mut counts = ClusterNoveltyCounts {
        total: assessments.len(),
        ..Default::default()
    };
    for a in assessments {
        let has_new = !a.new_metrics.is_empty();
        let has_discarded = !a.discarded_metrics.is_empty();
        match (has_new, has_discarded) {
            (true, true) => counts.with_new_and_discarded += 1,
            (true, false) => counts.with_new_only += 1,
            (false, true) => counts.with_discarded_only += 1,
            (false, false) => {
                if a.similarity < 1.0 {
                    counts.changed_membership += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::metric_diffs;
    use sieve_core::model::MetricCluster;

    fn clustering(component: &str, clusters: Vec<Vec<&str>>) -> ComponentClustering {
        ComponentClustering {
            component: component.into(),
            total_metrics: clusters.iter().map(|c| c.len()).sum(),
            filtered_metrics: vec![],
            clusters: clusters
                .into_iter()
                .map(|members| MetricCluster {
                    representative: members[0].into(),
                    members: members.into_iter().map(Name::from).collect(),
                    representative_distance: 0.05,
                })
                .collect(),
            silhouette: 0.6,
            chosen_k: 2,
        }
    }

    fn model(component: &str, clusters: Vec<Vec<&str>>) -> SieveModel {
        let mut m = SieveModel::default();
        m.clusterings
            .insert(component.into(), clustering(component, clusters));
        m
    }

    #[test]
    fn similarity_is_normalised_by_the_correct_cluster() {
        let correct = vec![Name::new("a"), Name::new("b")];
        let faulty = vec![
            Name::new("a"),
            Name::new("b"),
            Name::new("c"),
            Name::new("d"),
        ];
        // All correct members survive: similarity 1 despite the new metrics.
        assert_eq!(cluster_similarity(&correct, &faulty), 1.0);
        // Half the correct members survive.
        assert_eq!(cluster_similarity(&faulty, &correct), 0.5);
        assert_eq!(cluster_similarity(&[], &correct), 0.0);
    }

    #[test]
    fn faulty_clusters_are_matched_to_their_closest_correct_cluster() {
        let correct = model("api", vec![vec!["cpu", "mem"], vec!["active", "build"]]);
        let faulty = model("api", vec![vec!["cpu", "mem"], vec!["error", "build"]]);
        let diffs = metric_diffs(&correct, &faulty);
        let assessments = assess_all_clusters(&correct, &faulty, &diffs);
        assert_eq!(assessments.len(), 2);
        // The unchanged cluster has similarity 1 and no novelty.
        let stable = assessments
            .iter()
            .find(|a| a.members.iter().any(|m| m == "cpu"))
            .unwrap();
        assert_eq!(stable.similarity, 1.0);
        assert_eq!(stable.novelty_score(), 0);
        // The changed cluster picked up `error`, lost `active`, and matches
        // its correct counterpart with similarity 0.5.
        let changed = assessments
            .iter()
            .find(|a| a.members.iter().any(|m| m == "error"))
            .unwrap();
        assert_eq!(changed.new_metrics, vec!["error"]);
        assert_eq!(changed.discarded_metrics, vec!["active"]);
        assert_eq!(changed.similarity, 0.5);
        assert!(changed.is_novel(1));
    }

    #[test]
    fn vanished_clusters_are_reported() {
        let correct = model("agent", vec![vec!["sync", "devices"], vec!["cpu"]]);
        let faulty = model("agent", vec![vec!["cpu"]]);
        let diffs = metric_diffs(&correct, &faulty);
        let assessments = assess_all_clusters(&correct, &faulty, &diffs);
        let vanished: Vec<_> = assessments
            .iter()
            .filter(|a| a.faulty_index.is_none())
            .collect();
        assert_eq!(vanished.len(), 1);
        assert_eq!(vanished[0].discarded_metrics.len(), 2);
        assert_eq!(vanished[0].similarity, 0.0);
    }

    #[test]
    fn novelty_counts_aggregate_correctly() {
        let correct = model("api", vec![vec!["cpu", "mem"], vec!["active", "build"]]);
        let faulty = model("api", vec![vec!["cpu", "mem"], vec!["error", "build"]]);
        let diffs = metric_diffs(&correct, &faulty);
        let assessments = assess_all_clusters(&correct, &faulty, &diffs);
        let counts = novelty_counts(&assessments);
        assert_eq!(counts.total, 2);
        assert_eq!(counts.novel(), 1);
        assert_eq!(counts.with_new_and_discarded, 1);
        assert_eq!(counts.with_new_only + counts.with_discarded_only, 0);
    }

    #[test]
    fn identical_models_produce_no_novel_clusters() {
        let m = model("api", vec![vec!["cpu", "mem"], vec!["a", "b"]]);
        let diffs = metric_diffs(&m, &m.clone());
        let assessments = assess_all_clusters(&m, &m.clone(), &diffs);
        let counts = novelty_counts(&assessments);
        assert_eq!(counts.novel(), 0);
        assert_eq!(counts.changed_membership, 0);
        assert!(assessments.iter().all(|a| a.similarity == 1.0));
    }
}
