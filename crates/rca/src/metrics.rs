//! Steps 1 and 2: metric-level diffing and component rankings.
//!
//! "This step analyzes the presence or absence of metrics between C and F
//! versions. If a metric m is present in both C and F, it intuitively
//! represents the maintenance of healthy behavior ... the appearance of a
//! new metric (or the disappearance of a previously existing metric) between
//! versions is likely to be related with the anomaly." (§4.2)
//!
//! A metric counts as *present* when it survived Sieve's variance filter and
//! was clustered — a metric that froze at a constant value in the faulty
//! version therefore shows up as *discarded* even though the component still
//! technically exports it, which matches how the paper's OpenStack agent
//! crash manifests.

use sieve_core::model::SieveModel;
use sieve_exec::Name;
use std::collections::BTreeSet;

/// Per-component metric differences between the correct and faulty versions.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Component name.
    pub component: Name,
    /// Metrics present (clustered) only in the faulty version.
    pub new_metrics: Vec<Name>,
    /// Metrics present (clustered) only in the correct version.
    pub discarded_metrics: Vec<Name>,
    /// Metrics present in both versions (healthy behaviour).
    pub unchanged_metrics: Vec<Name>,
    /// Total number of metrics the component exported (faulty version, or
    /// correct when the component vanished).
    pub total_metrics: usize,
}

impl MetricDiff {
    /// The component's novelty score: number of new plus discarded metrics.
    pub fn novelty_score(&self) -> usize {
        self.new_metrics.len() + self.discarded_metrics.len()
    }
}

/// One row of the step-2 component ranking (Table 5's left columns).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRanking {
    /// Component name.
    pub component: Name,
    /// Novelty score (new + discarded metrics).
    pub novelty_score: usize,
    /// Number of new metrics.
    pub new_metrics: usize,
    /// Number of discarded metrics.
    pub discarded_metrics: usize,
    /// Total metrics of the component.
    pub total_metrics: usize,
}

/// Computes the per-component metric diff between two Sieve models.
pub fn metric_diffs(correct: &SieveModel, faulty: &SieveModel) -> Vec<MetricDiff> {
    let components: BTreeSet<&Name> = correct
        .clusterings
        .keys()
        .chain(faulty.clusterings.keys())
        .collect();
    let mut out = Vec::new();
    for component in components {
        let correct_metrics: BTreeSet<Name> = correct
            .clustering_of(component)
            .map(|c| c.clustered_metrics().into_iter().collect())
            .unwrap_or_default();
        let faulty_metrics: BTreeSet<Name> = faulty
            .clustering_of(component)
            .map(|c| c.clustered_metrics().into_iter().collect())
            .unwrap_or_default();
        let new_metrics: Vec<Name> = faulty_metrics
            .difference(&correct_metrics)
            .cloned()
            .collect();
        let discarded_metrics: Vec<Name> = correct_metrics
            .difference(&faulty_metrics)
            .cloned()
            .collect();
        let unchanged_metrics: Vec<Name> = correct_metrics
            .intersection(&faulty_metrics)
            .cloned()
            .collect();
        let total_metrics = faulty
            .clustering_of(component)
            .or_else(|| correct.clustering_of(component))
            .map(|c| c.total_metrics)
            .unwrap_or(0);
        out.push(MetricDiff {
            component: component.clone(),
            new_metrics,
            discarded_metrics,
            unchanged_metrics,
            total_metrics,
        });
    }
    out
}

/// Ranks components by novelty score (step 2). Ties are broken by component
/// name for determinism.
pub fn rank_components(diffs: &[MetricDiff]) -> Vec<ComponentRanking> {
    let mut rankings: Vec<ComponentRanking> = diffs
        .iter()
        .map(|d| ComponentRanking {
            component: d.component.clone(),
            novelty_score: d.novelty_score(),
            new_metrics: d.new_metrics.len(),
            discarded_metrics: d.discarded_metrics.len(),
            total_metrics: d.total_metrics,
        })
        .collect();
    rankings.sort_by(|a, b| {
        b.novelty_score
            .cmp(&a.novelty_score)
            .then_with(|| a.component.cmp(&b.component))
    });
    rankings
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::model::{ComponentClustering, MetricCluster};

    fn model_with(component: &str, metrics: Vec<&str>) -> SieveModel {
        let mut model = SieveModel::default();
        model.clusterings.insert(
            component.into(),
            ComponentClustering {
                component: component.into(),
                total_metrics: metrics.len() + 2,
                filtered_metrics: vec!["constant_a".into(), "constant_b".into()],
                clusters: vec![MetricCluster {
                    members: metrics.iter().map(|m| Name::new(m)).collect(),
                    representative: metrics.first().copied().unwrap_or("none").into(),
                    representative_distance: 0.1,
                }],
                silhouette: 0.6,
                chosen_k: 1,
            },
        );
        model
    }

    #[test]
    fn new_and_discarded_metrics_are_detected() {
        let correct = model_with("api", vec!["active", "cpu"]);
        let faulty = model_with("api", vec!["errors", "cpu"]);
        let diffs = metric_diffs(&correct, &faulty);
        assert_eq!(diffs.len(), 1);
        let d = &diffs[0];
        assert_eq!(d.new_metrics, vec!["errors"]);
        assert_eq!(d.discarded_metrics, vec!["active"]);
        assert_eq!(d.unchanged_metrics, vec!["cpu"]);
        assert_eq!(d.novelty_score(), 2);
    }

    #[test]
    fn identical_models_have_zero_novelty() {
        let model = model_with("api", vec!["a", "b"]);
        let diffs = metric_diffs(&model, &model.clone());
        assert_eq!(diffs[0].novelty_score(), 0);
        assert_eq!(diffs[0].unchanged_metrics.len(), 2);
    }

    #[test]
    fn components_missing_from_one_version_are_handled() {
        let correct = model_with("api", vec!["a"]);
        let faulty = model_with("agent", vec!["b"]);
        let diffs = metric_diffs(&correct, &faulty);
        assert_eq!(diffs.len(), 2);
        let api = diffs.iter().find(|d| d.component == "api").unwrap();
        assert_eq!(api.discarded_metrics, vec!["a"]);
        let agent = diffs.iter().find(|d| d.component == "agent").unwrap();
        assert_eq!(agent.new_metrics, vec!["b"]);
    }

    #[test]
    fn ranking_orders_by_novelty_then_name() {
        let diffs = vec![
            MetricDiff {
                component: "zeta".into(),
                new_metrics: vec!["a".into()],
                discarded_metrics: vec![],
                unchanged_metrics: vec![],
                total_metrics: 5,
            },
            MetricDiff {
                component: "alpha".into(),
                new_metrics: vec!["a".into()],
                discarded_metrics: vec![],
                unchanged_metrics: vec![],
                total_metrics: 5,
            },
            MetricDiff {
                component: "hot".into(),
                new_metrics: vec!["a".into(), "b".into()],
                discarded_metrics: vec!["c".into()],
                unchanged_metrics: vec![],
                total_metrics: 9,
            },
        ];
        let ranking = rank_components(&diffs);
        assert_eq!(ranking[0].component, "hot");
        assert_eq!(ranking[0].novelty_score, 3);
        assert_eq!(ranking[1].component, "alpha");
        assert_eq!(ranking[2].component, "zeta");
    }
}
