//! RCA engine configuration.

/// Thresholds steering the edge-filtering step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcaConfig {
    /// Minimum cluster similarity (modified Jaccard, §4.2 eq. 2) for an edge
    /// between "maintained" clusters to be considered interesting. The
    /// paper's evaluation uses 0.50.
    pub similarity_threshold: f64,
    /// Minimum cluster novelty score (number of new + discarded metrics) for
    /// a cluster to count as "novel".
    pub novelty_threshold: usize,
    /// Lag changes smaller than this (milliseconds) are ignored.
    pub lag_tolerance_ms: u64,
}

impl Default for RcaConfig {
    fn default() -> Self {
        Self {
            similarity_threshold: 0.5,
            novelty_threshold: 1,
            lag_tolerance_ms: 500,
        }
    }
}

impl RcaConfig {
    /// Builder-style setter for the similarity threshold.
    pub fn with_similarity_threshold(mut self, threshold: f64) -> Self {
        self.similarity_threshold = threshold;
        self
    }

    /// Builder-style setter for the novelty threshold.
    pub fn with_novelty_threshold(mut self, threshold: usize) -> Self {
        self.novelty_threshold = threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_evaluation() {
        let c = RcaConfig::default();
        assert_eq!(c.similarity_threshold, 0.5);
        assert_eq!(c.novelty_threshold, 1);
        assert_eq!(c.lag_tolerance_ms, 500);
    }

    #[test]
    fn builders_set_thresholds() {
        let c = RcaConfig::default()
            .with_similarity_threshold(0.7)
            .with_novelty_threshold(3);
        assert_eq!(c.similarity_threshold, 0.7);
        assert_eq!(c.novelty_threshold, 3);
    }
}
