//! Case study 2: root cause analysis (§4.2 and §6.3 of the paper).
//!
//! Given the Sieve models of a *correct* (C) and a *faulty* (F) version of an
//! application, the RCA engine narrows the search for a root cause down to a
//! ranked list of `{component, metric list}` pairs by following the five
//! steps of Figure 2:
//!
//! 1. **Metric analysis** ([`metrics`]) — which metrics appeared or
//!    disappeared between versions (metrics present in both are healthy and
//!    filtered out);
//! 2. **Component rankings** ([`metrics`]) — components ordered by their
//!    novelty score (number of new + discarded metrics);
//! 3. **Cluster analysis** ([`clusters`]) — novelty and similarity of each
//!    component's clusters across versions (similarity uses a modified
//!    Jaccard coefficient normalised by the correct cluster's size);
//! 4. **Edge filtering** ([`edges`]) — dependency-graph edges that are new,
//!    discarded or changed their time lag, filtered by cluster novelty and
//!    similarity thresholds;
//! 5. **Final rankings** ([`engine`]) — the surviving components, ordered by
//!    step-2 rank, each with the metrics implicated by steps 3 and 4.
//!
//! In the paper's OpenStack experiment this procedure ranks the Nova and
//! Neutron components at the top and isolates the edge between
//! `nova_instances_in_state_ERROR` and `neutron_ports_in_status_DOWN` — the
//! observable trace of the crashed Open vSwitch agent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clusters;
pub mod config;
pub mod edges;
pub mod engine;
pub mod metrics;

pub use config::RcaConfig;
pub use engine::{RankedCause, RcaEngine, RcaReport};
