//! Step 5 and the end-to-end RCA engine.
//!
//! "We present a final list of {component, metric list} pairs. The list is
//! ordered by component, following the rank given in step 2. The metric list
//! items include the metrics identified at steps 3 and 4." (§4.2)

use crate::clusters::{
    assess_all_clusters, novelty_counts, ClusterAssessment, ClusterNoveltyCounts,
};
use crate::config::RcaConfig;
use crate::edges::{diff_edges, edge_novelty_counts, surviving_scope, EdgeDiff, EdgeNoveltyCounts};
use crate::metrics::{metric_diffs, rank_components, ComponentRanking, MetricDiff};
use sieve_core::model::SieveModel;
use sieve_exec::Name;
use std::collections::{BTreeMap, BTreeSet};

/// One entry of the final ranking: a candidate root-cause component with the
/// metrics a developer should inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCause {
    /// Final rank (1 = most likely related to the root cause).
    pub rank: usize,
    /// Component name.
    pub component: Name,
    /// Novelty score from step 2.
    pub novelty_score: usize,
    /// Metrics implicated by steps 3 and 4.
    pub metrics: Vec<Name>,
}

/// The full output of an RCA comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RcaReport {
    /// Step 1: per-component metric differences.
    pub metric_diffs: Vec<MetricDiff>,
    /// Step 2: components ranked by metric novelty.
    pub component_rankings: Vec<ComponentRanking>,
    /// Step 3: per-cluster novelty and similarity assessments.
    pub cluster_assessments: Vec<ClusterAssessment>,
    /// Step 3 aggregate: the Figure 7a counts.
    pub cluster_novelty: ClusterNoveltyCounts,
    /// Step 4: classified dependency-graph edge differences.
    pub edge_diffs: Vec<EdgeDiff>,
    /// Step 4 aggregate: the Figure 7b counts at the configured threshold.
    pub edge_novelty: EdgeNoveltyCounts,
    /// Step 4 aggregate: `(components, clusters, metrics)` surviving the
    /// edge filter (Figure 7c).
    pub surviving_scope: (usize, usize, usize),
    /// Step 5: the final ranked list of candidate root causes.
    pub final_ranking: Vec<RankedCause>,
    /// The configuration used for the comparison.
    pub config: RcaConfig,
}

impl RcaReport {
    /// The rank of a component in the final ranking (1-based), if present.
    pub fn rank_of(&self, component: &str) -> Option<usize> {
        self.final_ranking
            .iter()
            .find(|c| c.component == component)
            .map(|c| c.rank)
    }

    /// The top `k` components of the final ranking, in rank order — what a
    /// scoring harness checks an injected root cause against.
    pub fn top_components(&self, k: usize) -> Vec<Name> {
        self.final_ranking
            .iter()
            .take(k)
            .map(|c| c.component.clone())
            .collect()
    }

    /// Whether a `(component, metric)` pair appears in the final ranking's
    /// metric lists.
    pub fn implicates_metric(&self, component: &str, metric: &str) -> bool {
        self.final_ranking
            .iter()
            .any(|c| c.component == component && c.metrics.iter().any(|m| m == metric))
    }

    /// Total number of metrics across the final ranking's metric lists.
    pub fn implicated_metric_count(&self) -> usize {
        self.final_ranking.iter().map(|c| c.metrics.len()).sum()
    }
}

/// The root cause analysis engine.
#[derive(Debug, Clone, Default)]
pub struct RcaEngine {
    config: RcaConfig,
}

impl RcaEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: RcaConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RcaConfig {
        &self.config
    }

    /// Compares the Sieve models of the correct and faulty versions and
    /// produces the five-step report.
    pub fn compare(&self, correct: &SieveModel, faulty: &SieveModel) -> RcaReport {
        // Steps 1 & 2.
        let diffs = metric_diffs(correct, faulty);
        let rankings = rank_components(&diffs);

        // Step 3.
        let assessments = assess_all_clusters(correct, faulty, &diffs);
        let cluster_novelty = novelty_counts(&assessments);

        // Step 4.
        let edge_diffs = diff_edges(correct, faulty, &assessments, &self.config);
        let edge_novelty = edge_novelty_counts(&edge_diffs, &self.config);
        let scope = surviving_scope(&edge_diffs, &assessments, &self.config);

        // Step 5: components surviving the edge filter, ordered by the
        // step-2 ranking; their metric lists combine the novel-cluster
        // metrics (step 3) and the metrics on interesting edges (step 4).
        let surviving_components: BTreeSet<&Name> = edge_diffs
            .iter()
            .filter(|d| d.is_interesting(&self.config))
            .flat_map(|d| [&d.edge.source_component, &d.edge.target_component])
            .collect();

        let mut metric_lists: BTreeMap<Name, BTreeSet<Name>> = BTreeMap::new();
        for d in edge_diffs.iter().filter(|d| d.is_interesting(&self.config)) {
            metric_lists
                .entry(d.edge.source_component.clone())
                .or_default()
                .insert(d.edge.source_metric.clone());
            metric_lists
                .entry(d.edge.target_component.clone())
                .or_default()
                .insert(d.edge.target_metric.clone());
        }
        for a in &assessments {
            if !surviving_components.contains(&a.component) {
                continue;
            }
            if a.is_novel(self.config.novelty_threshold) {
                let entry = metric_lists.entry(a.component.clone()).or_default();
                for m in a.new_metrics.iter().chain(a.discarded_metrics.iter()) {
                    entry.insert(m.clone());
                }
            }
        }

        let mut final_ranking = Vec::new();
        let mut rank = 0usize;
        for ranking in &rankings {
            if !surviving_components.contains(&ranking.component) {
                continue;
            }
            rank += 1;
            final_ranking.push(RankedCause {
                rank,
                component: ranking.component.clone(),
                novelty_score: ranking.novelty_score,
                metrics: metric_lists
                    .get(&ranking.component)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default(),
            });
        }

        RcaReport {
            metric_diffs: diffs,
            component_rankings: rankings,
            cluster_assessments: assessments,
            cluster_novelty,
            edge_diffs,
            edge_novelty,
            surviving_scope: scope,
            final_ranking,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::model::{ComponentClustering, MetricCluster};
    use sieve_graph::{DependencyEdge, DependencyGraph};

    fn clustering(component: &str, clusters: Vec<Vec<&str>>) -> ComponentClustering {
        ComponentClustering {
            component: component.into(),
            total_metrics: clusters.iter().map(|c| c.len()).sum::<usize>() + 1,
            filtered_metrics: vec!["some_constant".into()],
            clusters: clusters
                .into_iter()
                .map(|members| MetricCluster {
                    representative: members[0].into(),
                    members: members.into_iter().map(Name::from).collect(),
                    representative_distance: 0.05,
                })
                .collect(),
            silhouette: 0.6,
            chosen_k: 1,
        }
    }

    fn edge(sc: &str, sm: &str, tc: &str, tm: &str, lag: u64) -> DependencyEdge {
        DependencyEdge {
            source_component: sc.into(),
            source_metric: sm.into(),
            target_component: tc.into(),
            target_metric: tm.into(),
            p_value: 0.01,
            f_statistic: 20.0,
            lag_ms: lag,
        }
    }

    /// A miniature OpenStack-like scenario: the faulty version gains an
    /// ERROR->DOWN edge, loses the healthy ACTIVE->ACTIVE edge, and an
    /// unrelated pair of components stays identical.
    fn scenario() -> (SieveModel, SieveModel) {
        let mut correct = SieveModel::default();
        correct.clusterings.insert(
            "nova-api".into(),
            clustering(
                "nova-api",
                vec![
                    vec!["instances_active", "cpu", "build_rate"],
                    vec!["req_rate"],
                ],
            ),
        );
        correct.clusterings.insert(
            "neutron".into(),
            clustering("neutron", vec![vec!["ports_active", "net"]]),
        );
        correct.clusterings.insert(
            "keystone".into(),
            clustering("keystone", vec![vec!["auth_rate", "auth_cpu"]]),
        );
        let mut cg = DependencyGraph::new();
        cg.add_edge(edge(
            "nova-api",
            "instances_active",
            "neutron",
            "ports_active",
            500,
        ));
        cg.add_edge(edge("nova-api", "req_rate", "keystone", "auth_rate", 500));
        correct.dependency_graph = cg;

        let mut faulty = SieveModel::default();
        faulty.clusterings.insert(
            "nova-api".into(),
            clustering(
                "nova-api",
                vec![vec!["instances_error", "cpu"], vec!["req_rate"]],
            ),
        );
        faulty.clusterings.insert(
            "neutron".into(),
            clustering("neutron", vec![vec!["ports_down", "net"]]),
        );
        faulty.clusterings.insert(
            "keystone".into(),
            clustering("keystone", vec![vec!["auth_rate", "auth_cpu"]]),
        );
        let mut fg = DependencyGraph::new();
        fg.add_edge(edge(
            "nova-api",
            "instances_error",
            "neutron",
            "ports_down",
            500,
        ));
        fg.add_edge(edge("nova-api", "req_rate", "keystone", "auth_rate", 500));
        faulty.dependency_graph = fg;
        (correct, faulty)
    }

    #[test]
    fn final_ranking_implicates_the_faulty_components_and_metrics() {
        let (correct, faulty) = scenario();
        let report = RcaEngine::new(RcaConfig::default()).compare(&correct, &faulty);

        // The healthy component never makes it into the final ranking.
        assert!(report.rank_of("keystone").is_none());
        // Both anomalous components are ranked.
        assert!(report.rank_of("nova-api").is_some());
        assert!(report.rank_of("neutron").is_some());
        // nova-api has the larger novelty score and therefore ranks first.
        assert_eq!(report.rank_of("nova-api"), Some(1));
        // top_components follows the final ranking and truncates at k.
        assert_eq!(report.top_components(1), vec![Name::from("nova-api")]);
        assert_eq!(report.top_components(10).len(), report.final_ranking.len());
        // The error/down metrics are in the metric lists.
        assert!(report.implicates_metric("nova-api", "instances_error"));
        assert!(report.implicates_metric("neutron", "ports_down"));
        assert!(report.implicated_metric_count() >= 4);
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let (correct, faulty) = scenario();
        let report = RcaEngine::new(RcaConfig::default()).compare(&correct, &faulty);
        assert_eq!(report.metric_diffs.len(), 3);
        assert_eq!(report.component_rankings.len(), 3);
        assert!(report.cluster_novelty.novel() >= 2);
        assert!(report.edge_novelty.new >= 1);
        assert!(report.edge_novelty.discarded >= 1);
        let (components, clusters, metrics) = report.surviving_scope;
        assert!(components >= 2);
        assert!(clusters >= 2);
        assert!(metrics >= 2);
    }

    #[test]
    fn comparing_identical_versions_yields_an_empty_ranking() {
        let (correct, _) = scenario();
        let report = RcaEngine::new(RcaConfig::default()).compare(&correct, &correct.clone());
        assert!(report.final_ranking.is_empty());
        assert_eq!(report.cluster_novelty.novel(), 0);
        assert_eq!(report.edge_novelty.new, 0);
        assert_eq!(report.edge_novelty.discarded, 0);
        assert_eq!(report.surviving_scope, (0, 0, 0));
        assert_eq!(report.implicated_metric_count(), 0);
    }

    #[test]
    fn stricter_similarity_thresholds_never_grow_the_scope() {
        let (correct, faulty) = scenario();
        let loose = RcaEngine::new(RcaConfig::default().with_similarity_threshold(0.0))
            .compare(&correct, &faulty);
        let strict = RcaEngine::new(RcaConfig::default().with_similarity_threshold(0.7))
            .compare(&correct, &faulty);
        assert!(loose.surviving_scope.0 >= strict.surviving_scope.0);
        assert!(loose.surviving_scope.2 >= strict.surviving_scope.2);
        assert!(loose.final_ranking.len() >= strict.final_ranking.len());
    }
}
