//! Step 4: edge filtering.
//!
//! The RCA engine examines the dependency-graph differences between the two
//! versions and keeps the edges that are most likely related to the anomaly
//! (§4.2, Table 2):
//!
//! 1. edges involving at least one *novel* cluster,
//! 2. edges that appear or disappear between clusters that are otherwise
//!    highly similar across versions, and
//! 3. edges whose Granger time lag changed between versions (again between
//!    similar clusters).

use crate::clusters::ClusterAssessment;
use crate::config::RcaConfig;
use sieve_core::model::SieveModel;
use sieve_exec::Name;
use sieve_graph::DependencyEdge;
use std::collections::BTreeSet;

/// How an edge differs between the correct and faulty versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeChangeKind {
    /// The edge exists only in the faulty version.
    New,
    /// The edge exists only in the correct version.
    Discarded,
    /// The edge exists in both versions but its time lag changed.
    LagChanged,
    /// The edge exists in both versions with the same lag.
    Unchanged,
}

/// One dependency-graph edge annotated with its change classification and
/// the cluster context needed for filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDiff {
    /// The edge (taken from the faulty version when present there, otherwise
    /// from the correct version).
    pub edge: DependencyEdge,
    /// The classification of the change.
    pub change: EdgeChangeKind,
    /// Lag in the correct version (when the edge exists there).
    pub correct_lag_ms: Option<u64>,
    /// Lag in the faulty version (when the edge exists there).
    pub faulty_lag_ms: Option<u64>,
    /// Whether at least one endpoint metric belongs to a novel cluster.
    pub involves_novel_cluster: bool,
    /// The smaller of the two endpoint-cluster similarities.
    pub min_endpoint_similarity: f64,
}

impl EdgeDiff {
    /// Whether the edge survives the paper's filtering rules under `config`:
    /// changed edges that either touch a novel cluster or connect clusters
    /// maintained across versions (similarity above the threshold).
    pub fn is_interesting(&self, config: &RcaConfig) -> bool {
        if self.change == EdgeChangeKind::Unchanged {
            return false;
        }
        self.involves_novel_cluster || self.min_endpoint_similarity >= config.similarity_threshold
    }
}

/// Counts of edge classifications (one group of bars in Figure 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeNoveltyCounts {
    /// Edges present only in the faulty version.
    pub new: usize,
    /// Edges present only in the correct version.
    pub discarded: usize,
    /// Edges whose lag changed.
    pub lag_changed: usize,
    /// Edges unchanged between versions.
    pub unchanged: usize,
}

impl EdgeNoveltyCounts {
    /// Total number of classified edges.
    pub fn total(&self) -> usize {
        self.new + self.discarded + self.lag_changed + self.unchanged
    }
}

/// Looks up the cluster assessment covering `metric` of `component`.
///
/// A metric is covered either because it is a member of the (faulty-version)
/// cluster or because it is one of the metrics that *disappeared* from the
/// cluster's correct-version counterpart — discarded edges reference such
/// metrics.
fn assessment_for<'a>(
    assessments: &'a [ClusterAssessment],
    component: &str,
    metric: &str,
) -> Option<&'a ClusterAssessment> {
    assessments.iter().find(|a| {
        a.component == component
            && (a.members.iter().any(|m| m == metric)
                || a.discarded_metrics.iter().any(|m| m == metric))
    })
}

/// Classifies every edge of both dependency graphs and annotates it with the
/// cluster context from step 3.
pub fn diff_edges(
    correct: &SieveModel,
    faulty: &SieveModel,
    assessments: &[ClusterAssessment],
    config: &RcaConfig,
) -> Vec<EdgeDiff> {
    let correct_edges = correct.dependency_graph.edges();
    let faulty_edges = faulty.dependency_graph.edges();
    let correct_keys: BTreeSet<_> = correct_edges.iter().map(|e| e.metric_key()).collect();
    let faulty_keys: BTreeSet<_> = faulty_edges.iter().map(|e| e.metric_key()).collect();

    let mut out = Vec::new();

    let annotate = |edge: &DependencyEdge,
                    change: EdgeChangeKind,
                    correct_lag: Option<u64>,
                    faulty_lag: Option<u64>|
     -> EdgeDiff {
        let source = assessment_for(assessments, &edge.source_component, &edge.source_metric);
        let target = assessment_for(assessments, &edge.target_component, &edge.target_metric);
        let involves_novel_cluster = source
            .map(|a| a.is_novel(config.novelty_threshold))
            .unwrap_or(false)
            || target
                .map(|a| a.is_novel(config.novelty_threshold))
                .unwrap_or(false);
        let min_endpoint_similarity = source
            .map(|a| a.similarity)
            .unwrap_or(0.0)
            .min(target.map(|a| a.similarity).unwrap_or(0.0));
        EdgeDiff {
            edge: edge.clone(),
            change,
            correct_lag_ms: correct_lag,
            faulty_lag_ms: faulty_lag,
            involves_novel_cluster,
            min_endpoint_similarity,
        }
    };

    // Edges of the faulty version: new, lag-changed or unchanged.
    for edge in faulty_edges {
        if correct_keys.contains(&edge.metric_key()) {
            let correct_edge = correct_edges
                .iter()
                .find(|e| e.metric_key() == edge.metric_key())
                .expect("key present");
            let change = if edge.lag_ms.abs_diff(correct_edge.lag_ms) > config.lag_tolerance_ms {
                EdgeChangeKind::LagChanged
            } else {
                EdgeChangeKind::Unchanged
            };
            out.push(annotate(
                edge,
                change,
                Some(correct_edge.lag_ms),
                Some(edge.lag_ms),
            ));
        } else {
            out.push(annotate(edge, EdgeChangeKind::New, None, Some(edge.lag_ms)));
        }
    }
    // Edges that only exist in the correct version: discarded.
    for edge in correct_edges {
        if !faulty_keys.contains(&edge.metric_key()) {
            out.push(annotate(
                edge,
                EdgeChangeKind::Discarded,
                Some(edge.lag_ms),
                None,
            ));
        }
    }
    out
}

/// Aggregates edge diffs into the Figure 7b counts, considering only edges
/// whose endpoint similarity is at least `similarity_threshold` (or which
/// touch a novel cluster).
pub fn edge_novelty_counts(diffs: &[EdgeDiff], config: &RcaConfig) -> EdgeNoveltyCounts {
    let mut counts = EdgeNoveltyCounts::default();
    for d in diffs {
        let admitted =
            d.involves_novel_cluster || d.min_endpoint_similarity >= config.similarity_threshold;
        if !admitted {
            continue;
        }
        match d.change {
            EdgeChangeKind::New => counts.new += 1,
            EdgeChangeKind::Discarded => counts.discarded += 1,
            EdgeChangeKind::LagChanged => counts.lag_changed += 1,
            EdgeChangeKind::Unchanged => counts.unchanged += 1,
        }
    }
    counts
}

/// The `(components, clusters, metrics)` touched by the interesting edges —
/// the quantities plotted in Figure 7c.
pub fn surviving_scope(
    diffs: &[EdgeDiff],
    assessments: &[ClusterAssessment],
    config: &RcaConfig,
) -> (usize, usize, usize) {
    let mut components: BTreeSet<Name> = BTreeSet::new();
    let mut clusters: BTreeSet<(Name, Option<usize>)> = BTreeSet::new();
    let mut metrics: BTreeSet<(Name, Name)> = BTreeSet::new();
    for d in diffs.iter().filter(|d| d.is_interesting(config)) {
        for (component, metric) in [
            (&d.edge.source_component, &d.edge.source_metric),
            (&d.edge.target_component, &d.edge.target_metric),
        ] {
            components.insert(component.clone());
            metrics.insert((component.clone(), metric.clone()));
            if let Some(a) = assessment_for(assessments, component, metric) {
                clusters.insert((a.component.clone(), a.faulty_index));
                // Every member of an implicated cluster is part of the state
                // the developer needs to look at.
                for m in &a.members {
                    metrics.insert((component.clone(), m.clone()));
                }
            }
        }
    }
    (components.len(), clusters.len(), metrics.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::assess_all_clusters;
    use crate::metrics::metric_diffs;
    use sieve_core::model::{ComponentClustering, MetricCluster};
    use sieve_graph::DependencyGraph;

    fn clustering(component: &str, clusters: Vec<Vec<&str>>) -> ComponentClustering {
        ComponentClustering {
            component: component.into(),
            total_metrics: clusters.iter().map(|c| c.len()).sum(),
            filtered_metrics: vec![],
            clusters: clusters
                .into_iter()
                .map(|members| MetricCluster {
                    representative: members[0].into(),
                    members: members.into_iter().map(Name::from).collect(),
                    representative_distance: 0.05,
                })
                .collect(),
            silhouette: 0.6,
            chosen_k: 1,
        }
    }

    fn edge(sc: &str, sm: &str, tc: &str, tm: &str, lag: u64) -> DependencyEdge {
        DependencyEdge {
            source_component: sc.into(),
            source_metric: sm.into(),
            target_component: tc.into(),
            target_metric: tm.into(),
            p_value: 0.01,
            f_statistic: 20.0,
            lag_ms: lag,
        }
    }

    /// Correct version: api {active} -> server {ports_active}.
    /// Faulty version: api {error} -> server {ports_down}, plus a lag change
    /// on a stable edge.
    fn models() -> (SieveModel, SieveModel) {
        let mut correct = SieveModel::default();
        correct
            .clusterings
            .insert("api".into(), clustering("api", vec![vec!["active", "cpu"]]));
        correct.clusterings.insert(
            "server".into(),
            clustering("server", vec![vec!["ports_active", "net"]]),
        );
        let mut cg = DependencyGraph::new();
        cg.add_edge(edge("api", "active", "server", "ports_active", 500));
        cg.add_edge(edge("api", "cpu", "server", "net", 500));
        correct.dependency_graph = cg;

        let mut faulty = SieveModel::default();
        faulty
            .clusterings
            .insert("api".into(), clustering("api", vec![vec!["error", "cpu"]]));
        faulty.clusterings.insert(
            "server".into(),
            clustering("server", vec![vec!["ports_down", "net"]]),
        );
        let mut fg = DependencyGraph::new();
        fg.add_edge(edge("api", "error", "server", "ports_down", 500));
        fg.add_edge(edge("api", "cpu", "server", "net", 2000));
        faulty.dependency_graph = fg;
        (correct, faulty)
    }

    fn full_diff() -> (Vec<EdgeDiff>, Vec<ClusterAssessment>) {
        let (correct, faulty) = models();
        let diffs = metric_diffs(&correct, &faulty);
        let assessments = assess_all_clusters(&correct, &faulty, &diffs);
        let config = RcaConfig::default();
        (
            diff_edges(&correct, &faulty, &assessments, &config),
            assessments,
        )
    }

    #[test]
    fn edge_changes_are_classified() {
        let (diffs, _) = full_diff();
        let kinds: Vec<EdgeChangeKind> = diffs.iter().map(|d| d.change).collect();
        assert!(kinds.contains(&EdgeChangeKind::New));
        assert!(kinds.contains(&EdgeChangeKind::Discarded));
        assert!(kinds.contains(&EdgeChangeKind::LagChanged));
        assert_eq!(diffs.len(), 3);
    }

    #[test]
    fn the_error_edge_touches_a_novel_cluster() {
        let (diffs, _) = full_diff();
        let new_edge = diffs
            .iter()
            .find(|d| d.change == EdgeChangeKind::New)
            .unwrap();
        assert_eq!(new_edge.edge.source_metric, "error");
        assert!(new_edge.involves_novel_cluster);
        assert!(new_edge.is_interesting(&RcaConfig::default()));
    }

    #[test]
    fn lag_changed_edges_record_both_lags() {
        let (diffs, _) = full_diff();
        let lag = diffs
            .iter()
            .find(|d| d.change == EdgeChangeKind::LagChanged)
            .unwrap();
        assert_eq!(lag.correct_lag_ms, Some(500));
        assert_eq!(lag.faulty_lag_ms, Some(2000));
    }

    #[test]
    fn novelty_counts_and_scope_shrink_with_higher_thresholds() {
        let (diffs, assessments) = full_diff();
        let loose = RcaConfig::default().with_similarity_threshold(0.0);
        let strict = RcaConfig::default().with_similarity_threshold(0.9);
        let loose_counts = edge_novelty_counts(&diffs, &loose);
        let strict_counts = edge_novelty_counts(&diffs, &strict);
        assert!(loose_counts.total() >= strict_counts.total());
        let (c_loose, _, m_loose) = surviving_scope(&diffs, &assessments, &loose);
        let (c_strict, _, m_strict) = surviving_scope(&diffs, &assessments, &strict);
        assert!(c_loose >= c_strict);
        assert!(m_loose >= m_strict);
        assert!(c_loose <= 2);
    }

    #[test]
    fn identical_models_have_only_unchanged_edges() {
        let (correct, _) = models();
        let diffs = metric_diffs(&correct, &correct.clone());
        let assessments = assess_all_clusters(&correct, &correct.clone(), &diffs);
        let config = RcaConfig::default();
        let edge_diffs = diff_edges(&correct, &correct.clone(), &assessments, &config);
        assert!(edge_diffs
            .iter()
            .all(|d| d.change == EdgeChangeKind::Unchanged));
        assert!(edge_diffs.iter().all(|d| !d.is_interesting(&config)));
        let (c, cl, m) = surviving_scope(&edge_diffs, &assessments, &config);
        assert_eq!((c, cl, m), (0, 0, 0));
    }
}
