//! Direct unit tests of the RCA primitives against hand-constructed
//! ground truths — independent of the simulator, so a regression in
//! `rank_of`, `diff_edges` or `assess_component_clusters` is pinned to
//! the primitive rather than to a scenario score.

use sieve_core::model::{ComponentClustering, MetricCluster, SieveModel};
use sieve_exec::Name;
use sieve_graph::{DependencyEdge, DependencyGraph};
use sieve_rca::clusters::{assess_all_clusters, assess_component_clusters, cluster_similarity};
use sieve_rca::edges::{diff_edges, EdgeChangeKind};
use sieve_rca::metrics::{metric_diffs, MetricDiff};
use sieve_rca::{RcaConfig, RcaEngine};

fn clustering(component: &str, clusters: &[&[&str]]) -> ComponentClustering {
    let total: usize = clusters.iter().map(|c| c.len()).sum();
    ComponentClustering {
        component: Name::from(component),
        total_metrics: total,
        filtered_metrics: vec![],
        clusters: clusters
            .iter()
            .map(|members| MetricCluster {
                members: members.iter().map(|m| Name::from(*m)).collect(),
                representative: Name::from(members[0]),
                representative_distance: 0.05,
            })
            .collect(),
        silhouette: 0.8,
        chosen_k: clusters.len(),
    }
}

fn edge(src: (&str, &str), dst: (&str, &str), lag_ms: u64) -> DependencyEdge {
    DependencyEdge {
        source_component: Name::from(src.0),
        source_metric: Name::from(src.1),
        target_component: Name::from(dst.0),
        target_metric: Name::from(dst.1),
        p_value: 0.01,
        f_statistic: 9.0,
        lag_ms,
    }
}

fn model(clusterings: Vec<ComponentClustering>, edges: Vec<DependencyEdge>) -> SieveModel {
    let mut graph = DependencyGraph::new();
    for c in &clusterings {
        graph.add_component(c.component.clone());
    }
    for e in edges {
        graph.add_edge(e);
    }
    SieveModel {
        application: "hand-built".to_string(),
        clusterings: clusterings
            .into_iter()
            .map(|c| (c.component.clone(), c))
            .collect(),
        dependency_graph: graph,
    }
}

/// Correct version: `web` has {cpu, mem} and {lat}; `db` has {q}.
fn correct_model() -> SieveModel {
    model(
        vec![
            clustering("web", &[&["cpu", "mem"], &["lat"]]),
            clustering("db", &[&["q"]]),
        ],
        vec![edge(("web", "cpu"), ("db", "q"), 500)],
    )
}

/// Faulty version: `lat` vanished from `web`, an `err` metric appeared,
/// the cpu->q lag grew by 1000 ms and a new err->q edge showed up.
fn faulty_model() -> SieveModel {
    model(
        vec![
            clustering("web", &[&["cpu", "mem"], &["err"]]),
            clustering("db", &[&["q"]]),
        ],
        vec![
            edge(("web", "cpu"), ("db", "q"), 1500),
            edge(("web", "err"), ("db", "q"), 500),
        ],
    )
}

#[test]
fn rank_of_places_the_novel_component_first() {
    let report = RcaEngine::new(RcaConfig::default()).compare(&correct_model(), &faulty_model());
    assert_eq!(report.rank_of("web"), Some(1));
    // db touches the interesting edges (it is the q endpoint) so it
    // survives the filter, but with zero novelty it ranks below web.
    assert_eq!(report.rank_of("db"), Some(2));
    assert_eq!(report.rank_of("no-such-component"), None);
    assert_eq!(report.top_components(1), vec![Name::from("web")]);
    let cause = &report.final_ranking[0];
    assert_eq!(cause.novelty_score, 2, "err appeared + lat vanished");
    assert!(cause.metrics.iter().any(|m| m == "err"));
}

#[test]
fn metric_diffs_classify_new_discarded_and_unchanged() {
    let diffs = metric_diffs(&correct_model(), &faulty_model());
    let web = diffs.iter().find(|d| d.component == "web").unwrap();
    assert_eq!(web.new_metrics, vec![Name::from("err")]);
    assert_eq!(web.discarded_metrics, vec![Name::from("lat")]);
    assert_eq!(web.unchanged_metrics.len(), 2);
    assert_eq!(web.novelty_score(), 2);
    let db = diffs.iter().find(|d| d.component == "db").unwrap();
    assert_eq!(db.novelty_score(), 0);
}

#[test]
fn assess_component_clusters_matches_and_scores_clusters() {
    let correct = correct_model();
    let faulty = faulty_model();
    let diff = MetricDiff {
        component: Name::from("web"),
        new_metrics: vec![Name::from("err")],
        discarded_metrics: vec![Name::from("lat")],
        unchanged_metrics: vec![Name::from("cpu"), Name::from("mem")],
        total_metrics: 3,
    };
    let assessments = assess_component_clusters(
        "web",
        correct.clustering_of("web"),
        faulty.clustering_of("web"),
        &diff,
    );

    // The {cpu, mem} cluster is maintained: full similarity, no novelty.
    let maintained = assessments
        .iter()
        .find(|a| a.members.iter().any(|m| m == "cpu"))
        .unwrap();
    assert!((maintained.similarity - 1.0).abs() < 1e-12);
    assert_eq!(maintained.novelty_score(), 0);
    assert!(!maintained.is_novel(1));

    // The {err} cluster is novel: a brand-new metric.
    let novel = assessments
        .iter()
        .find(|a| a.members.iter().any(|m| m == "err"))
        .unwrap();
    assert_eq!(novel.new_metrics, vec![Name::from("err")]);
    assert!(novel.is_novel(1));
    assert!(novel.faulty_index.is_some());
}

#[test]
fn cluster_similarity_is_the_modified_jaccard_of_the_paper() {
    let a = [Name::from("x"), Name::from("y")];
    let b = [Name::from("y"), Name::from("z")];
    // |{x,y} ∩ {y,z}| / |{x,y}| = 1/2.
    assert!((cluster_similarity(&a, &b) - 0.5).abs() < 1e-12);
    assert!((cluster_similarity(&a, &a) - 1.0).abs() < 1e-12);
    assert_eq!(cluster_similarity(&[], &b), 0.0);
    assert_eq!(cluster_similarity(&a, &[]), 0.0);
}

#[test]
fn diff_edges_classifies_every_change_kind_and_filters() {
    let config = RcaConfig::default();
    let correct = correct_model();
    let faulty = faulty_model();
    let diffs = metric_diffs(&correct, &faulty);
    let assessments = assess_all_clusters(&correct, &faulty, &diffs);
    let edge_diffs = diff_edges(&correct, &faulty, &assessments, &config);

    // cpu->q lag grew 500 -> 1500 (beyond the 500 ms tolerance).
    let lag_changed = edge_diffs
        .iter()
        .find(|d| d.edge.source_metric == "cpu")
        .unwrap();
    assert_eq!(lag_changed.change, EdgeChangeKind::LagChanged);
    assert_eq!(lag_changed.correct_lag_ms, Some(500));
    assert_eq!(lag_changed.faulty_lag_ms, Some(1500));
    // Both endpoints live in maintained clusters, so the similarity rule
    // admits the edge even without novelty.
    assert!(lag_changed.min_endpoint_similarity >= config.similarity_threshold);
    assert!(lag_changed.is_interesting(&config));

    // err->q exists only in the faulty version and touches a novel cluster.
    let new = edge_diffs
        .iter()
        .find(|d| d.edge.source_metric == "err")
        .unwrap();
    assert_eq!(new.change, EdgeChangeKind::New);
    assert!(new.involves_novel_cluster);
    assert!(new.is_interesting(&config));

    // An unchanged edge must never be interesting.
    let same = model(
        vec![
            clustering("web", &[&["cpu", "mem"], &["lat"]]),
            clustering("db", &[&["q"]]),
        ],
        vec![edge(("web", "cpu"), ("db", "q"), 500)],
    );
    let no_diffs = metric_diffs(&correct, &same);
    let no_assessments = assess_all_clusters(&correct, &same, &no_diffs);
    let unchanged = diff_edges(&correct, &same, &no_assessments, &config);
    assert_eq!(unchanged.len(), 1);
    assert_eq!(unchanged[0].change, EdgeChangeKind::Unchanged);
    assert!(!unchanged[0].is_interesting(&config));
}
