//! The shared parallel executor of the Sieve pipeline.
//!
//! Both embarrassingly parallel stages of the pipeline — the per-component
//! metric reduction (step 2) and the per-edge Granger comparisons (step 3)
//! — used to carry their own hand-rolled thread-scope blocks. This module
//! is the single policy layer that replaces them: callers describe *what*
//! to compute per item and the executor decides *how* (serial below the
//! parallelism threshold, chunked across the persistent
//! [`crate::pool::WorkerPool`] above it), always returning results in
//! input order so that serial and parallel runs are bit-for-bit
//! identical. Chunk boundaries are a pure function of `(workers,
//! items.len())` — the pool only decides which thread runs a chunk — so
//! moving from per-call scoped threads to pooled workers changes no
//! output anywhere.

/// The number of hardware threads worth spawning workers for.
///
/// `std::thread::available_parallelism` honours cgroup CPU quotas, so a
/// containerised run on a single core reports 1 — and the executor then
/// runs everything serially instead of paying thread overhead it can never
/// recoup.
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` with up to `workers` threads, preserving input
/// order in the output.
///
/// This is the execution-policy layer of the pipeline. An explicit request
/// is honoured exactly (clamped only to the item count): callers that say
/// "8 workers" get 8 worker threads even on a single-core host, which is
/// what keeps the serial-vs-parallel determinism tests meaningful on any
/// machine. Callers that want a hardware-appropriate degree pass
/// [`hardware_parallelism`] — that is what `SieveConfig::default()` does.
///
/// * An effective degree of 1 (or fewer than two items) runs serially on
///   the calling thread — no thread is ever spawned for degenerate inputs.
/// * Otherwise the items are split into contiguous chunks, each chunk runs
///   on the persistent [`crate::pool::WorkerPool`] (the calling thread
///   participates), and the per-chunk results are concatenated in chunk
///   order. Because chunks are contiguous and joined in order,
///   `par_map_chunks(w, items, f)[i] == f(&items[i])` for every `w` —
///   determinism is structural, not incidental, and independent of which
///   pooled worker ran which chunk.
///
/// # Panics
///
/// Propagates panics from `f` (the pool finishes all other chunks first).
///
/// # Example
///
/// ```
/// use sieve_exec::par_map_chunks;
///
/// let squares = par_map_chunks(4, &[1, 2, 3, 4, 5], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map_chunks<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let slots: Vec<std::sync::Mutex<Option<Vec<R>>>> = (0..chunks.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let run = |index: usize| {
        let result: Vec<R> = chunks[index].iter().map(&f).collect();
        *slots[index].lock().expect("executor result slot poisoned") = Some(result);
    };
    crate::pool::global_pool().execute(chunks.len(), &run);
    let mut out = Vec::with_capacity(items.len());
    for slot in &slots {
        out.extend(
            slot.lock()
                .expect("executor result slot poisoned")
                .take()
                .expect("executor chunk completed"),
        );
    }
    out
}

/// Like [`par_map_chunks`], but for fallible per-item work: stops at the
/// first error *in input order* (later chunks still run to completion, but
/// the reported error is deterministic regardless of thread timing).
///
/// # Errors
///
/// Returns the error of the earliest (by input index) failing item.
pub fn try_par_map_chunks<T, R, E, F>(workers: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    par_map_chunks(workers, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_worker_count() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for workers in [0, 1, 2, 3, 7, 16, 200] {
            assert_eq!(
                par_map_chunks(workers, &items, |x| x * 2),
                expected,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_serially() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_chunks(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_chunks(8, &[42], |x| *x + 1), vec![43]);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = par_map_chunks(5, &items, |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            *x
        });
        assert_eq!(counter.load(Ordering::SeqCst), 57);
        assert_eq!(out, items);
    }

    #[test]
    fn try_variant_reports_the_earliest_error() {
        let items: Vec<usize> = (0..40).collect();
        let result = try_par_map_chunks(4, &items, |x| {
            if *x == 7 || *x == 31 {
                Err(*x)
            } else {
                Ok(*x)
            }
        });
        assert_eq!(result, Err(7));
        let ok: Result<Vec<usize>, usize> = try_par_map_chunks(4, &items, |x| Ok(*x));
        assert_eq!(ok.unwrap().len(), 40);
    }

    #[test]
    fn parallel_and_serial_results_agree_on_nontrivial_work() {
        let items: Vec<u64> = (0..64).collect();
        let work =
            |x: &u64| -> f64 { (0..200).fold(*x as f64, |acc, i| acc + (i as f64 * 0.01).sin()) };
        let serial = par_map_chunks(1, &items, work);
        let parallel = par_map_chunks(8, &items, work);
        assert_eq!(serial, parallel);
    }
}

#[cfg(test)]
mod cap_tests {
    use super::*;

    #[test]
    fn hardware_parallelism_is_at_least_one() {
        assert!(hardware_parallelism() >= 1);
    }
}
