//! Execution and data-plane substrate shared by every Sieve crate.
//!
//! Two concerns live here because every other crate needs them and they
//! must not depend on anything else:
//!
//! * [`intern`] — [`Name`], the interned identifier type used for
//!   component and metric names across the store, the graphs and the
//!   analysis model. Cloning is a reference-count bump and comparisons hit
//!   a pointer-identity fast path, so hot loops never clone or compare
//!   `String`s.
//! * [`par`] — [`par_map_chunks`], the single parallel executor behind the
//!   pipeline's per-component reduction and per-edge causality testing.
//!   Results always come back in input order, which is what makes
//!   `parallelism = 1` and `parallelism = N` runs produce identical
//!   models.
//! * [`pool`] — the persistent [`pool::WorkerPool`] the executor runs on:
//!   long-lived workers spawned lazily and reused across calls, so sweeps
//!   and per-stage fan-outs stop paying per-call thread-spawn cost.
//! * [`hash`] — the deterministic splitmix64-based content-fingerprint
//!   helpers behind the store's per-series fingerprints and the analysis
//!   session's dirty-tracking cache keys.
//! * [`mem`] — procfs-based RSS introspection used by the bounded-memory
//!   fleet benchmark to assert flat memory under sustained ingest.

// `deny`, not `forbid`: the worker pool's lifetime-erased job pointer
// needs two narrowly-scoped, documented `unsafe` items (see `pool`);
// everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod intern;
pub mod mem;
pub mod par;
pub mod pool;

pub use intern::Name;
pub use par::{par_map_chunks, try_par_map_chunks};
pub use pool::PoolStats;
