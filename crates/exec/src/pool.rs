//! The persistent worker pool behind [`crate::par_map_chunks`].
//!
//! The executor used to spawn fresh scoped threads on every call, which
//! made every sweep, every per-component reduction and every Granger
//! fan-out pay thread-creation cost. This module replaces that with one
//! process-wide pool of long-lived workers: a call hands the pool a
//! *job* (a total chunk count plus a `Fn(usize)` that runs one chunk),
//! workers claim chunk indices from a shared atomic counter, and the
//! calling thread participates in the claiming loop itself — so a job
//! always makes progress even when every pooled worker is busy, and
//! nested jobs (a pooled sweep whose per-tenant refresh fans out again)
//! cannot deadlock: waits only ever point down the job tree.
//!
//! Determinism is unaffected by design: the pool decides only *who* runs
//! a chunk, never *what* the chunks are. Chunk boundaries and result
//! order are fixed by the caller ([`crate::par_map_chunks`] keeps its
//! contiguous-chunk math bit-for-bit), so serial, scoped-thread and
//! pooled execution produce identical output.
//!
//! # Safety
//!
//! Jobs borrow the caller's stack (the closure captures `&[T]` slices
//! and result slots by reference), but workers are long-lived, so the
//! borrow cannot be expressed with scoped-thread lifetimes. The pool
//! erases the lifetime behind a raw pointer (`RunPtr`) and restores
//! soundness with a strict protocol:
//!
//! * a worker dereferences the pointer only *after* claiming a chunk
//!   index `i < total` from the job's atomic cursor;
//! * every claimed chunk decrements the job's `remaining` count only
//!   *after* its run (or its panic) finishes;
//! * the caller blocks until `remaining == 0` before returning.
//!
//! Therefore every dereference happens while at least one chunk —
//! the dereferencing worker's own — is unfinished, which keeps the
//! caller (and hence the borrowed data) alive. Once `remaining` hits
//! zero the cursor is exhausted, so no late ticket-holder can claim a
//! chunk and the stale pointer is never touched again.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Hard ceiling on pooled worker threads — far above any sane
/// parallelism degree; exists so a pathological caller cannot exhaust
/// process thread limits.
const MAX_WORKERS: usize = 512;

/// Monotone counters describing the pool's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads spawned since the pool was created. A warm pool
    /// stops spawning: repeated jobs reuse the same workers.
    pub workers_spawned: u64,
    /// Chunks executed (by workers and participating callers alike).
    pub tasks_executed: u64,
}

/// Lifetime-erased pointer to a job's per-chunk closure. See the module
/// docs for the protocol that makes handing this to long-lived workers
/// sound.
struct RunPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (so `&`-access from any thread is fine)
// and the job protocol guarantees it outlives every dereference — the
// caller blocks until all chunks, and therefore all dereferences, are
// done.
#[allow(unsafe_code)]
unsafe impl Send for RunPtr {}
#[allow(unsafe_code)]
unsafe impl Sync for RunPtr {}

/// One submitted job: `total` chunks, claimed by index from `next`.
struct JobCore {
    run: RunPtr,
    total: usize,
    /// Claim cursor: `fetch_add` hands out chunk indices exactly once.
    next: AtomicUsize,
    /// Chunks not yet finished; the caller waits for this to hit zero.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload from any chunk, re-raised on the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl JobCore {
    /// Claims and runs chunks until the cursor is exhausted. Shared by
    /// pooled workers and the participating caller.
    fn work(&self, tasks_executed: &AtomicU64) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.total {
                return;
            }
            // SAFETY: `index < total` was just claimed, so this chunk's
            // `remaining` slot is still outstanding and the caller is
            // blocked — the pointee is alive (module-level protocol).
            #[allow(unsafe_code)]
            let run = unsafe { &*self.run.0 };
            let outcome = catch_unwind(AssertUnwindSafe(|| run(index)));
            tasks_executed.fetch_add(1, Ordering::Relaxed);
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut remaining = self.remaining.lock().expect("job counter poisoned");
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// Queue state guarded by the pool mutex: pending job tickets plus the
/// shutdown latch.
struct QueueState {
    tickets: VecDeque<Arc<JobCore>>,
    shutdown: bool,
}

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    workers_spawned: AtomicU64,
    tasks_executed: AtomicU64,
}

/// A pool of persistent worker threads executing chunked jobs.
///
/// Workers are spawned lazily: the pool grows to the high-water helper
/// demand of the jobs it has seen (capped) and stops — a warm pool
/// spawns nothing. Workers live until the pool is dropped (the global
/// pool behind [`crate::par_map_chunks`] lives for the process).
/// Dropping a pool wakes every worker and joins them all.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    max_workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WorkerPool")
            .field("workers_spawned", &stats.workers_spawned)
            .field("tasks_executed", &stats.tasks_executed)
            .finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers spawn on demand.
    pub fn new() -> Self {
        Self::with_max_workers(MAX_WORKERS)
    }

    /// Creates a pool that will never hold more than `max_workers`
    /// threads (jobs still complete — callers participate).
    pub fn with_max_workers(max_workers: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                queue: Mutex::new(QueueState {
                    tickets: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
                workers_spawned: AtomicU64::new(0),
                tasks_executed: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            max_workers,
        }
    }

    /// Runs `total` chunks of a job, blocking until all are finished.
    ///
    /// `run(i)` is called exactly once for every `i < total`, from the
    /// calling thread and/or pooled workers in unspecified assignment;
    /// the caller participates, so the job completes even with zero
    /// pooled workers available.
    ///
    /// # Panics
    ///
    /// Re-raises the first chunk panic on the calling thread — after
    /// every other chunk has finished, so borrowed data stays valid for
    /// stragglers.
    pub fn execute(&self, total: usize, run: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        if total == 1 {
            self.shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
            run(0);
            return;
        }
        // SAFETY (lifetime erasure): the borrow lives until this function
        // returns, and the function returns only after `remaining == 0`,
        // i.e. after the last possible dereference (module-level protocol).
        #[allow(unsafe_code)]
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(run as *const (dyn Fn(usize) + Sync + '_)) };
        let job = Arc::new(JobCore {
            run: RunPtr(erased),
            total,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(total),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        // The caller is one participant; offer the rest of the chunks to
        // the pool as tickets (each ticket admits one worker to the
        // claiming loop — stale tickets for a finished job are no-ops).
        let helpers = total - 1;
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for _ in 0..helpers {
                queue.tickets.push_back(Arc::clone(&job));
            }
        }
        self.shared.available.notify_all();
        self.spawn_up_to(helpers);

        job.work(&self.shared.tasks_executed);
        let mut remaining = job.remaining.lock().expect("job counter poisoned");
        while *remaining > 0 {
            remaining = job.done.wait(remaining).expect("job counter poisoned");
        }
        drop(remaining);
        let payload = job.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Grows the pool to the high-water helper demand: after this call
    /// the pool holds `max(previous size, min(wanted, cap))` workers.
    /// Deterministic — a warm pool running same-degree jobs never spawns
    /// again; busy workers are *not* double-provisioned (callers always
    /// participate, so jobs complete regardless of pool size).
    fn spawn_up_to(&self, wanted: usize) {
        let target = wanted.min(self.max_workers);
        let mut handles = self.handles.lock().expect("pool handles poisoned");
        while handles.len() < target {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name("sieve-exec-worker".to_string())
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
            handles.push(handle);
            self.shared.workers_spawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers_spawned: self.shared.workers_spawned.load(Ordering::Relaxed),
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// A pooled worker: pop a ticket, help its job to exhaustion, repeat;
/// exit when the pool shuts down and the queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        let ticket = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.tickets.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        match ticket {
            Some(job) => job.work(&shared.tasks_executed),
            None => return,
        }
    }
}

/// The process-wide pool behind [`crate::par_map_chunks`]. Lives for the
/// process; workers accumulate up to the demanded degree and are reused
/// by every subsequent parallel call.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

/// Lifetime counters of the [`global_pool`] — surfaced by the serving
/// layer's `ServiceStats`.
pub fn pool_stats() -> PoolStats {
    global_pool().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_every_chunk_exactly_once() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
        let run = |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        pool.execute(hits.len(), &run);
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn warm_pool_reuses_workers_instead_of_spawning() {
        let pool = WorkerPool::new();
        let run = |_i: usize| {
            std::thread::yield_now();
        };
        for _ in 0..5 {
            pool.execute(4, &run);
        }
        assert_eq!(
            pool.stats().workers_spawned,
            3,
            "pool grows to the high-water helper demand exactly once"
        );
        for _ in 0..20 {
            pool.execute(4, &run);
        }
        assert_eq!(
            pool.stats().workers_spawned,
            3,
            "same-degree jobs must not spawn more workers"
        );
        assert_eq!(pool.stats().tasks_executed, 100);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new();
        pool.execute(8, &|_i| {});
        drop(pool); // must not hang or leak (loom-free smoke: join returns)
    }

    #[test]
    fn zero_and_single_chunk_jobs_run_inline() {
        let pool = WorkerPool::new();
        pool.execute(0, &|_| panic!("no chunk to run"));
        let ran = AtomicU64::new(0);
        pool.execute(1, &|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().workers_spawned, 0, "inline jobs spawn nobody");
    }

    #[test]
    fn chunk_panics_propagate_after_all_chunks_finish() {
        let pool = WorkerPool::new();
        let finished = AtomicU64::new(0);
        let run = |i: usize| {
            if i == 3 {
                panic!("chunk 3 exploded");
            }
            finished.fetch_add(1, Ordering::Relaxed);
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.execute(8, &run)));
        let payload = outcome.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload");
        assert_eq!(message, "chunk 3 exploded");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            7,
            "every non-panicking chunk still ran"
        );
    }

    #[test]
    fn caller_participation_completes_jobs_with_no_pooled_workers() {
        let pool = WorkerPool::with_max_workers(0);
        let hits = AtomicU64::new(0);
        pool.execute(16, &|_i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert_eq!(pool.stats().workers_spawned, 0);
    }

    #[test]
    fn nested_jobs_complete() {
        let pool = Arc::new(WorkerPool::new());
        let inner_hits = AtomicU64::new(0);
        let outer = {
            let pool = Arc::clone(&pool);
            let inner_hits = &inner_hits;
            move |_i: usize| {
                pool.execute(4, &|_j| {
                    inner_hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        };
        pool.execute(4, &outer);
        assert_eq!(inner_hits.load(Ordering::Relaxed), 16);
    }
}
