//! Deterministic 64-bit content hashing shared across the workspace.
//!
//! The incremental-analysis layer keys its caches by *content
//! fingerprints*: the metric store maintains a running fingerprint per
//! recorded series, and the analysis session fingerprints prepared series,
//! component series sets and the statistical configuration. All of them
//! funnel through the splitmix64 finalizer below, so a fingerprint computed
//! on any host, at any parallelism degree, is bit-identical — which is what
//! lets "same fingerprint" stand in for "same content" in the
//! incremental==batch equality guarantees.
//!
//! These are content hashes, not cryptographic digests: collisions are
//! possible in principle (2⁻⁶⁴ per comparison) but irrelevant in practice
//! for cache keying.

/// The canonical seed every fingerprint chain starts from. A fixed non-zero
/// constant so that an empty series and a missing series hash differently
/// from zero.
pub const FINGERPRINT_SEED: u64 = 0x5349_4556_4501_7C15;

/// The splitmix64 finalizer: a fast, well-mixing 64-bit permutation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one 64-bit word into an accumulator. Order-sensitive: the rotate
/// makes `mix(mix(a, x), y)` differ from `mix(mix(a, y), x)`, so fingerprints
/// distinguish permuted content.
pub fn mix(acc: u64, word: u64) -> u64 {
    splitmix64(acc.rotate_left(13) ^ splitmix64(word))
}

/// Folds an `f64` into an accumulator by its raw bit pattern, so `0.0` and
/// `-0.0` (and every NaN payload) fingerprint as the distinct values they
/// are.
pub fn mix_f64(acc: u64, value: f64) -> u64 {
    mix(acc, value.to_bits())
}

/// Folds a string into an accumulator (FNV-1a over the bytes, then mixed),
/// order- and length-sensitive.
pub fn mix_str(acc: u64, s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(acc, h)
}

/// Deterministic 64-bit hash of a string key, starting from
/// [`FINGERPRINT_SEED`]. This is the routing hash behind
/// [`shard_index`]: it depends only on the key's bytes, so a key maps to
/// the same shard in every process, on every host, forever — which keeps
/// shard assignments stable across service restarts.
pub fn hash_str(s: &str) -> u64 {
    mix_str(FINGERPRINT_SEED, s)
}

/// Maps a string key onto one of `shard_count` shards via [`hash_str`].
///
/// `shard_count` must be a power of two (so the mapping is a mask, not a
/// modulo, and every one of splitmix64's well-mixed low bits contributes);
/// the sharded tenant registry in `sieve-serve` enforces this at
/// construction. The returned index is always `< shard_count`, and the
/// mapping is deterministic across processes and hosts.
///
/// # Panics
///
/// Panics if `shard_count` is zero or not a power of two.
pub fn shard_index(key: &str, shard_count: usize) -> usize {
    assert!(
        shard_count.is_power_of_two(),
        "shard_count must be a power of two, got {shard_count}"
    );
    (hash_str(key) & (shard_count as u64 - 1)) as usize
}

/// Fingerprints a whole `f64` slice (length-prefixed, order-sensitive),
/// starting from [`FINGERPRINT_SEED`].
pub fn fingerprint_f64s(values: &[f64]) -> u64 {
    values
        .iter()
        .fold(mix(FINGERPRINT_SEED, values.len() as u64), |acc, &v| {
            mix_f64(acc, v)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn mix_is_order_sensitive() {
        let a = mix(mix(FINGERPRINT_SEED, 1), 2);
        let b = mix(mix(FINGERPRINT_SEED, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_f64_distinguishes_signed_zero() {
        assert_ne!(mix_f64(0, 0.0), mix_f64(0, -0.0));
    }

    #[test]
    fn mix_str_distinguishes_contents_and_matches_itself() {
        assert_eq!(mix_str(7, "cpu"), mix_str(7, "cpu"));
        assert_ne!(mix_str(7, "cpu"), mix_str(7, "mem"));
        assert_ne!(mix_str(7, "ab"), mix_str(7, "a"));
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for count in [1usize, 2, 8, 16, 64] {
            for key in ["tenant-a", "tenant-b", "web", ""] {
                let shard = shard_index(key, count);
                assert!(shard < count, "{key} -> {shard} of {count}");
                assert_eq!(shard, shard_index(key, count), "routing is stable");
            }
        }
        // With enough keys the shards all get used (the hash actually
        // spreads, it is not constant).
        let mut seen = [false; 8];
        for i in 0..64 {
            seen[shard_index(&format!("tenant-{i}"), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 shards receive keys");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shard_index_rejects_non_power_of_two_counts() {
        shard_index("tenant", 6);
    }

    #[test]
    fn slice_fingerprint_is_length_prefixed() {
        assert_ne!(fingerprint_f64s(&[]), fingerprint_f64s(&[0.0]));
        assert_ne!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[2.0, 1.0]));
        assert_eq!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[1.0, 2.0]));
    }
}
