//! Deterministic 64-bit content hashing shared across the workspace.
//!
//! The incremental-analysis layer keys its caches by *content
//! fingerprints*: the metric store maintains a running fingerprint per
//! recorded series, and the analysis session fingerprints prepared series,
//! component series sets and the statistical configuration. All of them
//! funnel through the splitmix64 finalizer below, so a fingerprint computed
//! on any host, at any parallelism degree, is bit-identical — which is what
//! lets "same fingerprint" stand in for "same content" in the
//! incremental==batch equality guarantees.
//!
//! These are content hashes, not cryptographic digests: collisions are
//! possible in principle (2⁻⁶⁴ per comparison) but irrelevant in practice
//! for cache keying.

/// The canonical seed every fingerprint chain starts from. A fixed non-zero
/// constant so that an empty series and a missing series hash differently
/// from zero.
pub const FINGERPRINT_SEED: u64 = 0x5349_4556_4501_7C15;

/// The splitmix64 finalizer: a fast, well-mixing 64-bit permutation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one 64-bit word into an accumulator. Order-sensitive: the rotate
/// makes `mix(mix(a, x), y)` differ from `mix(mix(a, y), x)`, so fingerprints
/// distinguish permuted content.
pub fn mix(acc: u64, word: u64) -> u64 {
    splitmix64(acc.rotate_left(13) ^ splitmix64(word))
}

/// Folds an `f64` into an accumulator by its raw bit pattern, so `0.0` and
/// `-0.0` (and every NaN payload) fingerprint as the distinct values they
/// are.
pub fn mix_f64(acc: u64, value: f64) -> u64 {
    mix(acc, value.to_bits())
}

/// Folds a string into an accumulator (FNV-1a over the bytes, then mixed),
/// order- and length-sensitive.
pub fn mix_str(acc: u64, s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(acc, h)
}

/// Fingerprints a whole `f64` slice (length-prefixed, order-sensitive),
/// starting from [`FINGERPRINT_SEED`].
pub fn fingerprint_f64s(values: &[f64]) -> u64 {
    values
        .iter()
        .fold(mix(FINGERPRINT_SEED, values.len() as u64), |acc, &v| {
            mix_f64(acc, v)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn mix_is_order_sensitive() {
        let a = mix(mix(FINGERPRINT_SEED, 1), 2);
        let b = mix(mix(FINGERPRINT_SEED, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_f64_distinguishes_signed_zero() {
        assert_ne!(mix_f64(0, 0.0), mix_f64(0, -0.0));
    }

    #[test]
    fn mix_str_distinguishes_contents_and_matches_itself() {
        assert_eq!(mix_str(7, "cpu"), mix_str(7, "cpu"));
        assert_ne!(mix_str(7, "cpu"), mix_str(7, "mem"));
        assert_ne!(mix_str(7, "ab"), mix_str(7, "a"));
    }

    #[test]
    fn slice_fingerprint_is_length_prefixed() {
        assert_ne!(fingerprint_f64s(&[]), fingerprint_f64s(&[0.0]));
        assert_ne!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[2.0, 1.0]));
        assert_eq!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[1.0, 2.0]));
    }
}
