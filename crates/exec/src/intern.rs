//! Interned identifier strings.
//!
//! The Sieve pipeline shuffles the same few hundred component and metric
//! names through every layer: the simulator's store, the call graph, the
//! per-component clusterings and the dependency graph. Keying all of those
//! by `String` means every hand-off clones heap data and every map lookup
//! compares bytes. [`Name`] replaces that with a process-wide interned
//! `Arc<str>`: cloning is a reference-count bump, and equality tests hit the
//! pointer-identity fast path (two interned names are equal iff they share
//! the same allocation).
//!
//! Determinism matters for the pipeline (serial and parallel runs must
//! produce identical models), so [`Name`] deliberately orders and hashes by
//! *string content*, not by pointer: `BTreeMap<Name, _>` iterates in the
//! same lexicographic order as `BTreeMap<String, _>` did, and
//! `Borrow<str>` lets all those maps keep answering `&str` lookups.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

/// A cheaply clonable, interned identifier (component or metric name).
///
/// # Example
///
/// ```
/// use sieve_exec::Name;
///
/// let a = Name::new("web");
/// let b: Name = "web".into();
/// assert_eq!(a, b);
/// assert_eq!(a, "web");
/// assert_eq!(a.as_str(), "web");
/// ```
#[derive(Clone)]
pub struct Name(Arc<str>);

/// The pool sweeps dead entries whenever it has doubled since the last
/// sweep (with this floor, so small working sets never pay for sweeps).
const SWEEP_FLOOR: usize = 1024;

struct Pool {
    entries: HashSet<Arc<str>>,
    /// Pool size right after the previous sweep; growth is measured
    /// against this.
    last_sweep_len: usize,
}

fn pool() -> &'static Mutex<Pool> {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        Mutex::new(Pool {
            entries: HashSet::new(),
            last_sweep_len: 0,
        })
    })
}

impl Name {
    /// Interns `s`, returning the canonical [`Name`] for that string.
    pub fn new(s: &str) -> Self {
        let mut pool = pool().lock().expect("interner poisoned");
        if let Some(existing) = pool.entries.get(s) {
            return Name(existing.clone());
        }
        // Amortised garbage collection: once the pool has doubled since the
        // last sweep, drop entries no live `Name` refers to any more. This
        // bounds the pool to ~2x the live name set even when the name space
        // churns (per-instance ids, per-run labels), at O(1) amortised cost
        // per intern.
        if pool.entries.len() >= pool.last_sweep_len.max(SWEEP_FLOOR) * 2 {
            pool.entries.retain(|entry| Arc::strong_count(entry) > 1);
            pool.last_sweep_len = pool.entries.len();
        }
        let arc: Arc<str> = Arc::from(s);
        pool.entries.insert(arc.clone());
        Name(arc)
    }

    /// The interned string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Number of distinct strings currently interned (diagnostics only).
    pub fn interned_count() -> usize {
        pool().lock().expect("interner poisoned").entries.len()
    }
}

impl std::ops::Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Interning guarantees one allocation per distinct string, so
        // pointer identity decides almost every comparison; the content
        // check only matters for names from different interner generations
        // (impossible today, but cheap insurance).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Content hashing keeps `Hash` consistent with `Borrow<str>`, so
        // hash maps keyed by `Name` answer `&str` lookups.
        self.0.hash(state);
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.0, f)
    }
}

impl std::fmt::Debug for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.0, f)
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::new("")
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(&s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl From<Name> for String {
    fn from(n: Name) -> Self {
        n.as_str().to_string()
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn interning_deduplicates_allocations() {
        let a = Name::new("intern_dedup_test_key");
        let b = Name::new("intern_dedup_test_key");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn names_compare_like_strings() {
        let a = Name::new("alpha");
        let z = Name::new("zulu");
        assert!(a < z);
        assert_eq!(a, "alpha");
        assert_eq!("alpha", a.clone());
        assert_eq!(a, "alpha".to_string());
        assert_ne!(a, z);
    }

    #[test]
    fn btreemap_answers_str_lookups_in_lexicographic_order() {
        let mut map: BTreeMap<Name, usize> = BTreeMap::new();
        map.insert(Name::new("web"), 1);
        map.insert(Name::new("db"), 2);
        map.insert(Name::new("api"), 3);
        assert_eq!(map.get("db"), Some(&2));
        let keys: Vec<&Name> = map.keys().collect();
        assert_eq!(keys, ["api", "db", "web"]);
    }

    #[test]
    fn hashing_is_consistent_with_borrow() {
        let mut set: std::collections::HashSet<Name> = std::collections::HashSet::new();
        set.insert(Name::new("cpu_usage"));
        assert!(set.contains("cpu_usage"));
        assert!(!set.contains("mem_usage"));
    }

    #[test]
    fn conversions_roundtrip() {
        let n: Name = "metric".to_string().into();
        let s: String = n.clone().into();
        assert_eq!(s, "metric");
        assert_eq!(n.to_string(), "metric");
        assert_eq!(format!("{n:?}"), "\"metric\"");
        let via_ref: Name = (&n).into();
        assert_eq!(via_ref, n);
        assert_eq!(Name::default(), "");
    }

    #[test]
    fn clones_are_refcount_bumps() {
        let a = Name::new("cheap_clone_test");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn dead_entries_are_swept_and_live_ones_survive_churn() {
        let live = Name::new("sweep_test_live_name");
        // Churn far past the sweep threshold with names that are dropped
        // immediately; the pool must not grow without bound.
        for i in 0..(super::SWEEP_FLOOR * 8) {
            let _ = Name::new(&format!("sweep_test_transient_{i}"));
        }
        assert!(
            Name::interned_count() < super::SWEEP_FLOOR * 8,
            "interner retained all {} transient names ({} interned)",
            super::SWEEP_FLOOR * 8,
            Name::interned_count()
        );
        // The live name survived every sweep and still resolves to the
        // same allocation.
        let again = Name::new("sweep_test_live_name");
        assert!(Arc::ptr_eq(&live.0, &again.0));
    }
}
