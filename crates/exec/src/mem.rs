//! Process-memory introspection for the bounded-memory benchmarks.
//!
//! The fleet bench and the bounded-memory example need to assert that RSS
//! stays flat while a windowed `MetricStore` ingests indefinitely. This
//! module reads the resident set size straight from `/proc/self/status`
//! with no external dependencies; on platforms without procfs it simply
//! reports `None` and callers skip their RSS assertions.

/// Returns the current resident set size of this process in kilobytes, if
/// the platform exposes it.
///
/// Reads the `VmRSS` line of `/proc/self/status` (Linux). Returns `None`
/// when the file or the field is unavailable, so callers can degrade to
/// skipping memory assertions instead of failing.
pub fn current_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_rss_kb(&status)
}

/// Extracts the `VmRSS` value in kB from `/proc/self/status` contents.
fn parse_vm_rss_kb(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let field = line.strip_prefix("VmRSS:")?.trim();
    let number = field.split_whitespace().next()?;
    number.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_rss_line() {
        let status = "Name:\ttest\nVmPeak:\t  100 kB\nVmRSS:\t   5128 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_rss_kb(status), Some(5128));
    }

    #[test]
    fn missing_field_yields_none() {
        assert_eq!(parse_vm_rss_kb("Name:\ttest\n"), None);
    }

    #[test]
    fn current_rss_is_positive_on_linux() {
        if let Some(kb) = current_rss_kb() {
            assert!(kb > 0);
        }
    }
}
