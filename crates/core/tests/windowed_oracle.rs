//! The windowed-vs-unbounded oracle suite for the bounded-memory store.
//!
//! The unbounded `MetricStore` is the reference: these tests pin down
//! exactly when a ring-windowed store is allowed to change the analysis.
//!
//! * **Window fits retention → bit-identical models.** When every series'
//!   full history fits inside `raw_capacity`, nothing is ever evicted and
//!   the windowed store must produce a `SieveModel` equal to the oracle's,
//!   at every parallelism degree.
//! * **Window exceeds retention → deterministic, documented divergence.**
//!   Once points are evicted the pipeline analyses the retained tail. The
//!   result is *defined*, not arbitrary: it equals a from-scratch analysis
//!   of an unbounded store fed only the retained window, and it is
//!   reproducible bit for bit across runs and parallelism degrees.
//!
//! Case generation is deterministic splitmix64, like the simulator's
//! property suites (no `proptest` in the container).

use sieve_apps::{sharelatex, MetricRichness};
use sieve_core::config::{RetentionPolicy, SieveConfig};
use sieve_core::pipeline::{load_application_with_retention, Sieve};
use sieve_simulator::workload::Workload;

const DURATION_MS: u64 = 40_000;
const INTERVAL_MS: u64 = 500;
/// Points per series the simulation emits: one per tick.
const POINTS: usize = (DURATION_MS / INTERVAL_MS) as usize;

fn config(parallelism: usize) -> SieveConfig {
    SieveConfig::default()
        .with_cluster_range(2, 3)
        .with_parallelism(parallelism)
}

/// Loads ShareLatex under the given retention and analyzes it.
fn model_with_retention(
    retention: RetentionPolicy,
    parallelism: usize,
) -> sieve_core::model::SieveModel {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let workload = Workload::randomized(80.0, 11);
    let (store, call_graph) =
        load_application_with_retention(&app, &workload, 7, DURATION_MS, INTERVAL_MS, retention)
            .expect("loading succeeds");
    Sieve::new(config(parallelism))
        .analyze("sharelatex", &store, &call_graph)
        .expect("analysis succeeds")
}

#[test]
fn ample_retention_is_bit_identical_to_the_unbounded_oracle() {
    let oracle = model_with_retention(RetentionPolicy::unbounded(), 1);
    // Capacity exactly the stream length and comfortably above it: both
    // retain everything, so the model must not move by a bit.
    for cap in [POINTS, POINTS + 37] {
        for parallelism in [1usize, 4, 8] {
            let windowed = model_with_retention(RetentionPolicy::windowed(cap), parallelism);
            assert_eq!(
                windowed, oracle,
                "cap {cap}, parallelism {parallelism}: no eviction may change the model"
            );
        }
    }
}

#[test]
fn tight_retention_diverges_deterministically_to_the_tail_analysis() {
    let cap = POINTS / 2;
    let oracle = model_with_retention(RetentionPolicy::unbounded(), 1);
    let windowed = model_with_retention(RetentionPolicy::windowed(cap), 1);
    assert_ne!(
        windowed.clusterings, oracle.clusterings,
        "half the history was evicted; the clusterings must reflect the tail"
    );

    // The divergence is *defined*: the windowed model equals a from-scratch
    // analysis of an unbounded store containing only the retained window...
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let workload = Workload::randomized(80.0, 11);
    let (windowed_store, call_graph) = load_application_with_retention(
        &app,
        &workload,
        7,
        DURATION_MS,
        INTERVAL_MS,
        RetentionPolicy::windowed(cap),
    )
    .unwrap();
    let tail_store = sieve_simulator::store::MetricStore::new();
    for (id, series) in windowed_store.export() {
        let (timestamps, values) = series.into_parts();
        for (t, v) in timestamps.into_iter().zip(values) {
            tail_store.record(&id, t, v);
        }
    }
    let tail_model = Sieve::new(config(1))
        .analyze("sharelatex", &tail_store, &call_graph)
        .unwrap();
    assert_eq!(
        windowed, tail_model,
        "the windowed model is exactly the analysis of the retained tail"
    );

    // ...and it is stable across parallelism degrees and repeated runs.
    for parallelism in [4usize, 8] {
        let again = model_with_retention(RetentionPolicy::windowed(cap), parallelism);
        assert_eq!(
            again, windowed,
            "parallelism {parallelism} diverges identically"
        );
    }
}
