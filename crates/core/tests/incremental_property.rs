//! Randomized property tests for the epoch-based incremental analysis
//! path: a session absorbing any sequence of deltas must emit the same
//! `SieveModel` as batch-analyzing the final store — bit for bit, across
//! executor degrees and engine toggles.
//!
//! Deterministic splitmix64 case generation (the container has no registry
//! access for `proptest`): every run checks the identical pseudo-random
//! inputs, so failures are trivially reproducible.

use sieve_core::config::SieveConfig;
use sieve_core::pipeline::Sieve;
use sieve_core::session::AnalysisSession;
use sieve_exec::Name;
use sieve_graph::CallGraph;
use sieve_simulator::store::{MetricId, MetricStore};
use std::collections::BTreeMap;

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        // `hash::splitmix64` advances by the golden-ratio increment and
        // finalizes in one step; feeding back the previous input keeps
        // the standard splitmix64 stream.
        let out = sieve_exec::hash::splitmix64(self.0);
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        out
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.usize_in(0, options.len() - 1)]
    }
}

const INTERVAL_MS: u64 = 500;

/// One randomly shaped metric series of `len` ticks on the 500 ms grid.
fn shaped_series(rng: &mut Rng, kind: usize, scale: f64, phase: f64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let x = t as f64;
            let noise = (rng.unit() - 0.5) * 0.1 * scale;
            match kind {
                0 => scale * (30.0 + 20.0 * (0.2 * x + phase).sin()) + noise,
                1 => scale * (5.0 + 0.5 * x) + noise,
                2 => scale * if (t / 16) % 2 == 0 { 10.0 } else { 40.0 } + noise,
                _ => scale * 7.0, // constant: exercises the variance filter
            }
        })
        .collect()
}

/// A random multi-component scenario: full per-series point sequences, a
/// chain call graph, and the per-epoch advance schedule.
struct Scenario {
    /// Full point values per series, recorded incrementally.
    series: BTreeMap<MetricId, Vec<f64>>,
    call_graph: CallGraph,
    /// Per-epoch, per-series number of additional ticks to record.
    epochs: Vec<BTreeMap<MetricId, usize>>,
}

fn random_scenario(seed: u64) -> Scenario {
    let mut rng = Rng::new(seed);
    let components = rng.usize_in(2, 4);
    let total_ticks = rng.usize_in(70, 120);

    // Per component: a driving "requests" signal, a lagged follower (so
    // Granger has real structure), and one randomly shaped extra metric.
    let mut series: BTreeMap<MetricId, Vec<f64>> = BTreeMap::new();
    let mut drivers: Vec<Vec<f64>> = Vec::new();
    for c in 0..components {
        let phase = rng.unit() * 3.0;
        let scale = 1.0 + rng.unit();
        let driver = if c == 0 {
            shaped_series(&mut rng, 0, scale, phase, total_ticks)
        } else {
            // Downstream load: the previous component's driver, lagged one
            // tick, rescaled, with fresh noise.
            let upstream = &drivers[c - 1];
            (0..total_ticks)
                .map(|t| {
                    let base = if t == 0 { 0.0 } else { upstream[t - 1] };
                    base * (1.5 + rng.unit()) + (rng.unit() - 0.5)
                })
                .collect()
        };
        let component = format!("svc{c}");
        series.insert(
            MetricId::new(component.as_str(), "requests"),
            driver.clone(),
        );
        let follower: Vec<f64> = (0..total_ticks)
            .map(|t| {
                let base = if t == 0 { 0.0 } else { driver[t - 1] };
                2.0 * base + (rng.unit() - 0.5)
            })
            .collect();
        series.insert(MetricId::new(component.as_str(), "latency"), follower);
        let kind = rng.usize_in(1, 3);
        let extra_scale = 1.0 + rng.unit();
        series.insert(
            MetricId::new(component.as_str(), "extra"),
            shaped_series(&mut rng, kind, extra_scale, 0.0, total_ticks),
        );
        drivers.push(driver);
    }

    let mut call_graph = CallGraph::new();
    for c in 1..components {
        call_graph.record_call(format!("svc{}", c - 1), format!("svc{c}"));
    }

    // Random epoch schedule: each epoch advances each series by a random
    // (possibly zero) number of ticks; a final epoch tops every series up
    // to the full length so all cases analyse the same amount of data.
    let mut remaining: BTreeMap<MetricId, usize> =
        series.keys().map(|id| (id.clone(), total_ticks)).collect();
    let mut epochs = Vec::new();
    for _ in 0..rng.usize_in(1, 4) {
        let mut epoch = BTreeMap::new();
        for (id, rem) in remaining.iter_mut() {
            let advance = rng.usize_in(0, (*rem).min(40));
            *rem -= advance;
            epoch.insert(id.clone(), advance);
        }
        epochs.push(epoch);
    }
    epochs.push(remaining.clone());
    Scenario {
        series,
        call_graph,
        epochs,
    }
}

fn record_ticks(
    store: &MetricStore,
    scenario: &Scenario,
    clocks: &mut BTreeMap<MetricId, usize>,
    epoch: &BTreeMap<MetricId, usize>,
) {
    for (id, &advance) in epoch {
        let clock = clocks.get_mut(id).unwrap();
        let values = &scenario.series[id];
        for _ in 0..advance {
            store.record(id, (*clock as u64 + 1) * INTERVAL_MS, values[*clock]);
            *clock += 1;
        }
    }
}

#[test]
fn random_delta_sequences_converge_to_the_batch_model() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xDEAD);
        let scenario = random_scenario(seed);
        let config = SieveConfig::default()
            .with_cluster_range(2, 3)
            .with_parallelism(*rng.pick(&[1usize, 2, 4]))
            .with_sbd_cache(*rng.pick(&[true, false]))
            .with_granger_cache(*rng.pick(&[true, false]));

        let store = MetricStore::new();
        let mut session = AnalysisSession::new(
            "random",
            store.clone(),
            scenario.call_graph.clone(),
            config.clone(),
        )
        .unwrap();

        let mut clocks: BTreeMap<MetricId, usize> =
            scenario.series.keys().map(|id| (id.clone(), 0)).collect();
        let mut streamed = None;
        for epoch in &scenario.epochs {
            record_ticks(&store, &scenario, &mut clocks, epoch);
            let delta = store.drain_delta();
            streamed = Some(session.update(&delta).unwrap());
        }
        let streamed = streamed.unwrap();

        let batch = Sieve::new(config)
            .analyze("random", &store, &scenario.call_graph)
            .unwrap();
        assert_eq!(
            streamed, batch,
            "seed {seed}: streamed session must match batch analysis"
        );
    }
}

#[test]
fn incremental_equals_batch_across_parallelism_and_engine_toggles() {
    // The acceptance matrix: parallelism 1/4/8 x SBD cache on/off x
    // Granger cache on/off, every streamed model and every batch model
    // structurally equal. One fixed scenario, re-streamed per combination.
    let scenario = random_scenario(0xC0FFEE % 8);
    let mut models = Vec::new();
    for parallelism in [1usize, 4, 8] {
        for sbd_cache in [true, false] {
            for granger_cache in [true, false] {
                let config = SieveConfig::default()
                    .with_cluster_range(2, 3)
                    .with_parallelism(parallelism)
                    .with_sbd_cache(sbd_cache)
                    .with_granger_cache(granger_cache);

                let store = MetricStore::new();
                let mut session = AnalysisSession::new(
                    "matrix",
                    store.clone(),
                    scenario.call_graph.clone(),
                    config.clone(),
                )
                .unwrap();
                let mut clocks: BTreeMap<MetricId, usize> =
                    scenario.series.keys().map(|id| (id.clone(), 0)).collect();
                let mut streamed = None;
                for epoch in &scenario.epochs {
                    record_ticks(&store, &scenario, &mut clocks, epoch);
                    streamed = Some(session.update(&store.drain_delta()).unwrap());
                }
                models.push(streamed.unwrap());

                let batch = Sieve::new(config)
                    .analyze("matrix", &store, &scenario.call_graph)
                    .unwrap();
                models.push(batch);
            }
        }
    }
    assert!(
        models[0].dependency_graph.edge_count() > 0,
        "the scenario must produce dependency edges"
    );
    for m in &models[1..] {
        assert_eq!(&models[0], m, "all 24 models must be bit-identical");
    }
}

#[test]
fn sessions_follow_a_growing_component_set() {
    // Components that appear mid-stream (new services deployed) are
    // picked up by the session without a restart.
    let scenario = random_scenario(3);
    let store = MetricStore::new();
    let config = SieveConfig::default()
        .with_cluster_range(2, 3)
        .with_parallelism(2);
    let mut session =
        AnalysisSession::new("growing", store.clone(), CallGraph::new(), config.clone()).unwrap();

    // Epoch 1: only svc0 exists; the call graph knows nothing yet.
    let mut clocks: BTreeMap<MetricId, usize> =
        scenario.series.keys().map(|id| (id.clone(), 0)).collect();
    let first: BTreeMap<MetricId, usize> = scenario
        .series
        .keys()
        .map(|id| {
            let n = if id.component == "svc0" { 60 } else { 0 };
            (id.clone(), n)
        })
        .collect();
    record_ticks(&store, &scenario, &mut clocks, &first);
    let partial = session.update(&store.drain_delta()).unwrap();
    assert_eq!(partial.clusterings.len(), 1);

    // Epoch 2: every component reports, the call graph fills in.
    let rest: BTreeMap<MetricId, usize> = clocks
        .iter()
        .map(|(id, &done)| (id.clone(), scenario.series[id].len() - done))
        .collect();
    record_ticks(&store, &scenario, &mut clocks, &rest);
    session.set_call_graph(scenario.call_graph.clone());
    let full = session.update(&store.drain_delta()).unwrap();

    let batch = Sieve::new(config)
        .analyze("growing", &store, &scenario.call_graph)
        .unwrap();
    assert_eq!(full, batch);
    assert!(full.clusterings.len() > 1);
    assert_eq!(
        full.clusterings.keys().cloned().collect::<Vec<Name>>(),
        store.components()
    );
}
