//! The output model of a Sieve analysis.
//!
//! All component and metric identifiers in the model are interned
//! [`Name`]s: cloning a model (or lifting names out of it into the RCA and
//! autoscaling engines) bumps reference counts instead of copying strings,
//! and lookups hit the interner's pointer-equality fast path.

use sieve_exec::Name;
use sieve_graph::DependencyGraph;
use std::collections::BTreeMap;

/// One cluster of similarly behaving metrics within a component.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCluster {
    /// Names of the metrics assigned to this cluster.
    pub members: Vec<Name>,
    /// The representative metric: the member closest (by shape-based
    /// distance) to the cluster centroid.
    pub representative: Name,
    /// Shape-based distance between the representative and the centroid.
    pub representative_distance: f64,
}

impl MetricCluster {
    /// Number of metrics in the cluster.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether the given metric belongs to this cluster.
    pub fn contains(&self, metric: &str) -> bool {
        self.members.iter().any(|m| m == metric)
    }
}

/// The clustering of one component's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentClustering {
    /// Component name.
    pub component: Name,
    /// Total number of metrics the component exported.
    pub total_metrics: usize,
    /// Metrics dropped by the variance filter.
    pub filtered_metrics: Vec<Name>,
    /// The clusters of the remaining metrics.
    pub clusters: Vec<MetricCluster>,
    /// Silhouette score of the chosen clustering (under SBD).
    pub silhouette: f64,
    /// The chosen number of clusters.
    pub chosen_k: usize,
}

impl ComponentClustering {
    /// The representative metrics of this component (one per cluster).
    pub fn representatives(&self) -> Vec<Name> {
        self.clusters
            .iter()
            .map(|c| c.representative.clone())
            .collect()
    }

    /// All metrics that survived the variance filter.
    pub fn clustered_metrics(&self) -> Vec<Name> {
        self.clusters
            .iter()
            .flat_map(|c| c.members.iter().cloned())
            .collect()
    }

    /// The cluster containing `metric`, if any.
    pub fn cluster_of(&self, metric: &str) -> Option<&MetricCluster> {
        self.clusters.iter().find(|c| c.contains(metric))
    }

    /// Metric-count reduction factor of this component
    /// (`total_metrics / number_of_representatives`).
    pub fn reduction_factor(&self) -> f64 {
        if self.clusters.is_empty() {
            return 1.0;
        }
        self.total_metrics as f64 / self.clusters.len() as f64
    }
}

/// The complete result of a Sieve analysis: per-component clusterings plus
/// the metric dependency graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SieveModel {
    /// Name of the analysed application.
    pub application: String,
    /// Per-component clustering results, keyed by component name.
    pub clusterings: BTreeMap<Name, ComponentClustering>,
    /// The dependency graph over representative metrics.
    pub dependency_graph: DependencyGraph,
}

impl SieveModel {
    /// Total number of metrics exported by all components.
    pub fn total_metric_count(&self) -> usize {
        self.clusterings.values().map(|c| c.total_metrics).sum()
    }

    /// Total number of representative metrics (i.e. what an operator has to
    /// monitor after Sieve's reduction).
    pub fn total_representative_count(&self) -> usize {
        self.clusterings.values().map(|c| c.clusters.len()).sum()
    }

    /// Overall reduction factor of the metric space.
    pub fn overall_reduction_factor(&self) -> f64 {
        let reps = self.total_representative_count();
        if reps == 0 {
            return 1.0;
        }
        self.total_metric_count() as f64 / reps as f64
    }

    /// The representative metrics of every component, as
    /// `(component, metric)` pairs — the set an operator keeps monitoring.
    pub fn representative_metrics(&self) -> Vec<(Name, Name)> {
        self.clusterings
            .values()
            .flat_map(|c| {
                let component = c.component.clone();
                c.representatives()
                    .into_iter()
                    .map(move |m| (component.clone(), m))
            })
            .collect()
    }

    /// The clustering of one component, if present.
    pub fn clustering_of(&self, component: &str) -> Option<&ComponentClustering> {
        self.clusterings.get(component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustering(component: &str, total: usize, clusters: Vec<Vec<&str>>) -> ComponentClustering {
        ComponentClustering {
            component: component.into(),
            total_metrics: total,
            filtered_metrics: vec![],
            clusters: clusters
                .into_iter()
                .map(|members| MetricCluster {
                    representative: members[0].into(),
                    members: members.into_iter().map(Name::from).collect(),
                    representative_distance: 0.1,
                })
                .collect(),
            silhouette: 0.7,
            chosen_k: 2,
        }
    }

    #[test]
    fn cluster_accessors() {
        let c = clustering("web", 10, vec![vec!["cpu", "mem"], vec!["latency"]]);
        assert_eq!(c.representatives(), vec!["cpu", "latency"]);
        assert_eq!(c.clustered_metrics().len(), 3);
        assert!(c.cluster_of("mem").unwrap().contains("cpu"));
        assert!(c.cluster_of("missing").is_none());
        assert!((c.reduction_factor() - 5.0).abs() < 1e-12);
        assert_eq!(c.clusters[0].size(), 2);
    }

    #[test]
    fn model_aggregates_counts() {
        let mut model = SieveModel {
            application: "test".into(),
            ..Default::default()
        };
        model.clusterings.insert(
            "web".into(),
            clustering("web", 30, vec![vec!["a"], vec!["b", "c"]]),
        );
        model
            .clusterings
            .insert("db".into(), clustering("db", 20, vec![vec!["q"]]));
        assert_eq!(model.total_metric_count(), 50);
        assert_eq!(model.total_representative_count(), 3);
        assert!((model.overall_reduction_factor() - 50.0 / 3.0).abs() < 1e-9);
        assert_eq!(model.representative_metrics().len(), 3);
        assert!(model.clustering_of("web").is_some());
        assert!(model.clustering_of("nope").is_none());
    }

    #[test]
    fn empty_model_has_factor_one() {
        let model = SieveModel::default();
        assert_eq!(model.overall_reduction_factor(), 1.0);
        let empty_clustering = ComponentClustering {
            component: "x".into(),
            total_metrics: 5,
            filtered_metrics: vec![],
            clusters: vec![],
            silhouette: 0.0,
            chosen_k: 0,
        };
        assert_eq!(empty_clustering.reduction_factor(), 1.0);
    }

    #[test]
    fn clone_equality_roundtrip() {
        let c = clustering("web", 10, vec![vec!["cpu", "mem"]]);
        let copy = c.clone();
        assert_eq!(copy, c);
    }
}
