//! Columnar storage for a component's prepared metric series.
//!
//! Preparation (resample + truncate, [`crate::reduce::prepare_series`])
//! yields a *rectangular* set of series per component: every kept metric
//! ends up with exactly `series_len` samples. A [`PreparedComponent`] packs
//! those samples end to end into **one** `Arc`-shared backing buffer instead
//! of one heap allocation per metric. Downstream consumers — the variance
//! filter, the k-Shape engine, the Granger stage and the session's
//! fingerprint cache — walk `series(i)` views into that arena, so a
//! component's whole prepared state is a single contiguous block with
//! predictable stride.
//!
//! The packing is a pure layout change: `series(i)` is bit-identical to the
//! `Vec<f64>` the per-series path produced (asserted by the round-trip test
//! below), and cloning a `PreparedComponent` (or the whole prepared map)
//! bumps one reference count rather than copying samples.

use crate::reduce::NamedSeries;
use sieve_exec::Name;
use std::sync::Arc;

/// A component's prepared series in columnar form: interned metric names
/// plus one contiguous `names.len() × series_len` backing buffer, where
/// series `i` occupies `buffer[i * series_len..(i + 1) * series_len]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedComponent {
    names: Vec<Name>,
    series_len: usize,
    buffer: Arc<[f64]>,
}

impl Default for PreparedComponent {
    /// An empty component: no series, zero series length.
    fn default() -> Self {
        Self {
            names: Vec::new(),
            series_len: 0,
            buffer: Arc::from(Vec::new()),
        }
    }
}

impl PreparedComponent {
    /// Packs `(name, values)` rows into a columnar component, truncating
    /// every row to the shortest row's length (the same rectangularisation
    /// rule preparation applies).
    pub fn from_rows<S: AsRef<[f64]>>(rows: impl IntoIterator<Item = (Name, S)>) -> Self {
        let rows: Vec<(Name, S)> = rows.into_iter().collect();
        let series_len = rows
            .iter()
            .map(|(_, v)| v.as_ref().len())
            .min()
            .unwrap_or(0);
        let mut buffer = Vec::with_capacity(rows.len() * series_len);
        let mut names = Vec::with_capacity(rows.len());
        for (name, values) in rows {
            buffer.extend_from_slice(&values.as_ref()[..series_len]);
            names.push(name);
        }
        Self {
            names,
            series_len,
            buffer: Arc::from(buffer),
        }
    }

    /// Packs already-prepared [`NamedSeries`] into columnar form (truncating
    /// to the shortest series, like [`PreparedComponent::from_rows`]).
    pub fn from_named(series: &[NamedSeries]) -> Self {
        Self::from_rows(
            series
                .iter()
                .map(|s| (s.name.clone(), Arc::clone(&s.values))),
        )
    }

    /// Number of series in the component.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the component holds zero series.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of samples of every (rectangular) series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The interned metric names, index-aligned with [`Self::series`].
    pub fn names(&self) -> &[Name] {
        &self.names
    }

    /// The name of series `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn name(&self, i: usize) -> &Name {
        &self.names[i]
    }

    /// The samples of series `i` — a view into the shared columnar arena.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn series(&self, i: usize) -> &[f64] {
        let start = i * self.series_len;
        &self.buffer[start..start + self.series_len]
    }

    /// Iterates `(name, samples)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &[f64])> {
        self.names
            .iter()
            .zip(self.buffer.chunks_exact(self.series_len.max(1)))
    }

    /// The shared backing buffer (all series packed end to end).
    pub fn buffer(&self) -> &Arc<[f64]> {
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize, seed: u64) -> f64 {
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn columnar_round_trip_is_bitwise() {
        for (count, len) in [(1usize, 7usize), (3, 16), (5, 33), (8, 1)] {
            let rows: Vec<(Name, Vec<f64>)> = (0..count)
                .map(|c| {
                    let values: Vec<f64> = (0..len).map(|i| noise(i, c as u64 * 31 + 1)).collect();
                    (Name::new(&format!("m{c}")), values)
                })
                .collect();
            let component = PreparedComponent::from_rows(rows.clone());
            assert_eq!(component.len(), count);
            assert_eq!(component.series_len(), len);
            assert!(!component.is_empty());
            for (i, (name, values)) in rows.iter().enumerate() {
                assert_eq!(component.name(i), name);
                let view = component.series(i);
                assert_eq!(view.len(), values.len());
                for (a, b) in view.iter().zip(values.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "series {i}");
                }
            }
            let collected: Vec<(&Name, &[f64])> = component.iter().collect();
            assert_eq!(collected.len(), count);
            for (i, (name, view)) in collected.iter().enumerate() {
                assert_eq!(*name, &rows[i].0);
                assert_eq!(view.len(), len);
            }
        }
    }

    #[test]
    fn from_rows_truncates_to_the_shortest_row() {
        let component = PreparedComponent::from_rows(vec![
            (Name::new("long"), vec![1.0, 2.0, 3.0, 4.0]),
            (Name::new("short"), vec![5.0, 6.0]),
        ]);
        assert_eq!(component.series_len(), 2);
        assert_eq!(component.series(0), &[1.0, 2.0]);
        assert_eq!(component.series(1), &[5.0, 6.0]);
    }

    #[test]
    fn from_named_matches_the_source_series() {
        let series = vec![
            NamedSeries::new("a", vec![1.0, 2.0, 3.0]),
            NamedSeries::new("b", vec![4.0, 5.0, 6.0]),
        ];
        let component = PreparedComponent::from_named(&series);
        assert_eq!(component.len(), 2);
        for (i, s) in series.iter().enumerate() {
            assert_eq!(component.name(i), &s.name);
            assert_eq!(component.series(i), &*s.values);
        }
    }

    #[test]
    fn empty_and_default_components_are_harmless() {
        let empty = PreparedComponent::from_rows(Vec::<(Name, Vec<f64>)>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.series_len(), 0);
        assert_eq!(empty.iter().count(), 0);
        assert_eq!(empty, PreparedComponent::default());

        // Zero-length series: rectangular but empty views.
        let zero_len = PreparedComponent::from_rows(vec![(Name::new("z"), Vec::<f64>::new())]);
        assert_eq!(zero_len.len(), 1);
        assert_eq!(zero_len.series_len(), 0);
        assert_eq!(zero_len.series(0), &[] as &[f64]);
    }

    #[test]
    fn clones_share_the_backing_buffer() {
        let component =
            PreparedComponent::from_rows(vec![(Name::new("m"), vec![1.0, 2.0, 3.0, 4.0])]);
        let copy = component.clone();
        assert!(Arc::ptr_eq(component.buffer(), copy.buffer()));
    }
}
