//! Step 3 of the pipeline: identify dependencies between components.
//!
//! Sieve restricts the quadratic pairwise comparison to *communicating*
//! components (the call graph from step 1) and to *representative metrics*
//! (the clusters from step 2): "For each component, we do pairwise
//! comparisons using each representative metric of its clusters with each of
//! its neighbouring components (i.e., callees) and their representative
//! metrics" (§3.3). Each pair is tested for Granger causality in both
//! directions, the significant directions become edges annotated with the
//! detected lag, and metric pairs that cause each other in both directions
//! are filtered out as likely artefacts of a hidden common cause.
//!
//! The comparisons run per-edge through [`sieve_exec::par_map_chunks`] — the
//! same executor as the reduction step — and the candidate-edge list comes
//! back in plan order, so the resulting graph is identical regardless of the
//! parallelism degree. The series lookup borrows views of the columnar
//! prepared arenas; nothing on this path clones a string or a sample
//! vector.
//!
//! By default (`SieveConfig::use_granger_cache`) the stage runs on the
//! shared causality engine: every (component, metric) series referenced by
//! the plan is turned into one [`PreparedGrangerSeries`] — ADF verdict and
//! variance computed up front through the executor, differenced buffer and
//! restricted AR fits cached on demand — and every edge test (both
//! directions, including the pairs the bidirectional filter later drops)
//! reuses that state instead of redoing the per-series work per pair. The
//! naive per-pair path is kept as the bit-identical reference oracle.

use crate::columnar::PreparedComponent;
use crate::config::SieveConfig;
use crate::model::ComponentClustering;
use crate::Result;
use sieve_causality::engine::{granger_causes_prepared, PreparedGrangerSeries};
use sieve_causality::granger::{granger_causes, GrangerResult};
use sieve_exec::{par_map_chunks, Name};
use sieve_graph::{CallGraph, DependencyEdge, DependencyGraph};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A `(component, metric)` key borrowing the interned names of the plan.
pub(crate) type SeriesKey<'a> = (&'a str, &'a str);

/// One Granger comparison that should be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Comparison {
    pub(crate) source_component: Name,
    pub(crate) source_metric: Name,
    pub(crate) target_component: Name,
    pub(crate) target_metric: Name,
}

/// Builds the list of metric pairs to test from the call graph and the
/// per-component representative metrics.
pub(crate) fn comparison_plan(
    call_graph: &CallGraph,
    clusterings: &BTreeMap<Name, ComponentClustering>,
) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (caller, callee) in call_graph.communicating_pairs() {
        if caller == callee {
            continue;
        }
        let (Some(caller_clustering), Some(callee_clustering)) =
            (clusterings.get(&caller), clusterings.get(&callee))
        else {
            continue;
        };
        for source_metric in caller_clustering.representatives() {
            for target_metric in callee_clustering.representatives() {
                out.push(Comparison {
                    source_component: caller.clone(),
                    source_metric: source_metric.clone(),
                    target_component: callee.clone(),
                    target_metric: target_metric.clone(),
                });
            }
        }
    }
    out
}

/// Number of pairwise tests a naive all-pairs/all-metrics approach would
/// need, for comparison against the call-graph-restricted plan (used by the
/// ablation bench).
pub fn naive_comparison_count(clusterings: &BTreeMap<Name, ComponentClustering>) -> usize {
    let components: Vec<&ComponentClustering> = clusterings.values().collect();
    let mut count = 0;
    for (i, a) in components.iter().enumerate() {
        for (j, b) in components.iter().enumerate() {
            if i == j {
                continue;
            }
            count += a.clustered_metrics().len() * b.clustered_metrics().len();
        }
    }
    count
}

/// Number of pairwise tests Sieve actually performs.
pub fn planned_comparison_count(
    call_graph: &CallGraph,
    clusterings: &BTreeMap<Name, ComponentClustering>,
) -> usize {
    comparison_plan(call_graph, clusterings).len() * 2
}

/// Indexes a prepared-component map for O(1) lookup. Keys borrow the
/// interned names, values borrow views of the columnar arenas — no clones
/// on this path.
pub(crate) fn series_lookup(
    series: &BTreeMap<Name, PreparedComponent>,
) -> HashMap<SeriesKey<'_>, &[f64]> {
    let mut lookup: HashMap<SeriesKey<'_>, &[f64]> = HashMap::new();
    for (component, prepared) in series {
        for (name, values) in prepared.iter() {
            lookup.insert((component.as_str(), name.as_str()), values);
        }
    }
    lookup
}

/// Runs every comparison of `plan` (both directions) and returns one
/// candidate-edge list *per comparison*, in plan order — the unit the
/// incremental session caches. [`identify_dependencies`] flattens this.
pub(crate) fn candidate_edges_per_comparison(
    plan: &[Comparison],
    lookup: &HashMap<SeriesKey<'_>, &[f64]>,
    config: &SieveConfig,
) -> Vec<Vec<DependencyEdge>> {
    if config.use_granger_cache {
        cached_candidate_edges(plan, lookup, config)
    } else {
        naive_candidate_edges(plan, lookup, config)
    }
}

/// Assembles the final graph from the clusterings, the call graph and the
/// candidate edges (in plan order), applying the bidirectional filter —
/// shared verbatim by the batch and incremental paths so both produce
/// structurally identical graphs.
pub(crate) fn assemble_graph(
    clusterings: &BTreeMap<Name, ComponentClustering>,
    call_graph: &CallGraph,
    candidate_edges: impl IntoIterator<Item = DependencyEdge>,
) -> DependencyGraph {
    let mut graph = DependencyGraph::new();
    for component in clusterings.keys() {
        graph.add_component(component.clone());
    }
    for component in call_graph.components() {
        graph.add_component(component);
    }
    for edge in candidate_edges {
        graph.add_edge(edge);
    }
    graph.filter_bidirectional();
    graph
}

/// Runs the Granger comparisons and assembles the dependency graph.
///
/// `series` maps each component to its prepared (resampled, columnar,
/// `Arc`-shared) series arena — the same buffers the reduction step ran on.
///
/// # Errors
///
/// Propagates configuration errors from the Granger tests; individual tests
/// that fail because a series is too short or degenerate are simply skipped
/// (no edge is produced).
pub fn identify_dependencies(
    series: &BTreeMap<Name, PreparedComponent>,
    clusterings: &BTreeMap<Name, ComponentClustering>,
    call_graph: &CallGraph,
    config: &SieveConfig,
) -> Result<DependencyGraph> {
    let plan = comparison_plan(call_graph, clusterings);
    let lookup = series_lookup(series);

    // Each comparison is tested in both directions (the callee may drive the
    // caller, e.g. back-pressure); the per-edge work runs through the shared
    // executor and the candidate edges are concatenated in plan order. Both
    // paths share the edge assembly, so the engine can only change *when*
    // per-series work happens, never what an edge looks like.
    let candidate_edges = candidate_edges_per_comparison(&plan, &lookup, config);
    Ok(assemble_graph(
        clusterings,
        call_graph,
        candidate_edges.into_iter().flatten(),
    ))
}

/// Turns the two directed test outcomes of one comparison into candidate
/// edges. `forward` is "source metric Granger-causes target metric";
/// individual tests that failed (too short, degenerate) arrive as `None`
/// and simply produce no edge.
fn edges_for_comparison(
    cmp: &Comparison,
    forward: Option<GrangerResult>,
    reverse: Option<GrangerResult>,
    interval_ms: u64,
) -> Vec<DependencyEdge> {
    let mut edges = Vec::new();
    if let Some(result) = forward {
        if result.causal {
            edges.push(DependencyEdge {
                source_component: cmp.source_component.clone(),
                source_metric: cmp.source_metric.clone(),
                target_component: cmp.target_component.clone(),
                target_metric: cmp.target_metric.clone(),
                p_value: result.p_value,
                f_statistic: result.f_statistic,
                lag_ms: result.best_lag as u64 * interval_ms,
            });
        }
    }
    if let Some(result) = reverse {
        if result.causal {
            edges.push(DependencyEdge {
                source_component: cmp.target_component.clone(),
                source_metric: cmp.target_metric.clone(),
                target_component: cmp.source_component.clone(),
                target_metric: cmp.source_metric.clone(),
                p_value: result.p_value,
                f_statistic: result.f_statistic,
                lag_ms: result.best_lag as u64 * interval_ms,
            });
        }
    }
    edges
}

/// The reference path: every pair re-runs the full Granger test on the raw
/// slices, recomputing ADF/differencing/restricted fits per pair and per
/// direction. Kept as the oracle the cached engine is equality-tested and
/// benchmarked against.
fn naive_candidate_edges(
    plan: &[Comparison],
    lookup: &HashMap<SeriesKey<'_>, &[f64]>,
    config: &SieveConfig,
) -> Vec<Vec<DependencyEdge>> {
    let per_comparison = |cmp: &Comparison| -> Vec<DependencyEdge> {
        let Some(source) = lookup.get(&(cmp.source_component.as_str(), cmp.source_metric.as_str()))
        else {
            return Vec::new();
        };
        let Some(target) = lookup.get(&(cmp.target_component.as_str(), cmp.target_metric.as_str()))
        else {
            return Vec::new();
        };
        let forward = granger_causes(source, target, &config.granger).ok();
        let reverse = granger_causes(target, source, &config.granger).ok();
        edges_for_comparison(cmp, forward, reverse, config.interval_ms)
    };
    par_map_chunks(config.parallelism, plan, per_comparison)
}

/// The engine path: one [`PreparedGrangerSeries`] per (component, metric)
/// referenced by the plan, built up front through the shared executor (each
/// needed representative is copied out of the columnar arena exactly once,
/// into the engine's own buffer), then every per-edge test in both
/// directions reuses it. The per-series ADF verdicts and variances are
/// computed exactly once, the differenced buffers and restricted fits at
/// most once per (differenced, order) key — instead of once per edge the
/// series participates in.
fn cached_candidate_edges(
    plan: &[Comparison],
    lookup: &HashMap<SeriesKey<'_>, &[f64]>,
    config: &SieveConfig,
) -> Vec<Vec<DependencyEdge>> {
    let needed: BTreeSet<SeriesKey<'_>> = plan
        .iter()
        .flat_map(|cmp| {
            [
                (cmp.source_component.as_str(), cmp.source_metric.as_str()),
                (cmp.target_component.as_str(), cmp.target_metric.as_str()),
            ]
        })
        .collect();
    let entries: Vec<(SeriesKey<'_>, &[f64])> = needed
        .into_iter()
        .filter_map(|key| lookup.get(&key).map(|values| (key, *values)))
        .collect();
    let states = par_map_chunks(config.parallelism, &entries, |(_, values)| {
        PreparedGrangerSeries::prepare(*values)
    });
    let prepared: HashMap<SeriesKey<'_>, PreparedGrangerSeries> =
        entries.iter().map(|(key, _)| *key).zip(states).collect();

    let per_comparison = |cmp: &Comparison| -> Vec<DependencyEdge> {
        let Some(source) =
            prepared.get(&(cmp.source_component.as_str(), cmp.source_metric.as_str()))
        else {
            return Vec::new();
        };
        let Some(target) =
            prepared.get(&(cmp.target_component.as_str(), cmp.target_metric.as_str()))
        else {
            return Vec::new();
        };
        let forward = granger_causes_prepared(source, target, &config.granger).ok();
        let reverse = granger_causes_prepared(target, source, &config.granger).ok();
        edges_for_comparison(cmp, forward, reverse, config.interval_ms)
    };
    par_map_chunks(config.parallelism, plan, per_comparison)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MetricCluster;

    fn clustering(component: &str, reps: Vec<&str>) -> ComponentClustering {
        ComponentClustering {
            component: component.into(),
            total_metrics: reps.len(),
            filtered_metrics: vec![],
            clusters: reps
                .iter()
                .map(|r| MetricCluster {
                    members: vec![Name::new(r)],
                    representative: Name::new(r),
                    representative_distance: 0.0,
                })
                .collect(),
            silhouette: 0.5,
            chosen_k: reps.len(),
        }
    }

    fn noise(i: usize, seed: u64) -> f64 {
        // Mix the index and the seed with different multipliers so that
        // streams with nearby seeds are genuinely independent (and not
        // shifted copies of each other).
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    /// Builds a two-component scenario where `frontend/requests` drives
    /// `backend/queries` with a one-step lag and `backend/noise` is
    /// unrelated.
    fn scenario() -> (
        BTreeMap<Name, PreparedComponent>,
        BTreeMap<Name, ComponentClustering>,
        CallGraph,
    ) {
        let n = 240;
        let requests: Vec<f64> = (0..n)
            .map(|i| 50.0 + 30.0 * ((i as f64) * 0.2).sin() + 3.0 * noise(i, 1))
            .collect();
        let queries: Vec<f64> = (0..n)
            .map(|i| {
                if i == 0 {
                    0.0
                } else {
                    2.0 * requests[i - 1] + 2.0 * noise(i, 2)
                }
            })
            .collect();
        let unrelated: Vec<f64> = (0..n).map(|i| 10.0 * noise(i, 3)).collect();

        let mut series = BTreeMap::new();
        series.insert(
            Name::new("frontend"),
            PreparedComponent::from_rows(vec![(Name::new("requests"), requests)]),
        );
        series.insert(
            Name::new("backend"),
            PreparedComponent::from_rows(vec![
                (Name::new("queries"), queries),
                (Name::new("noise"), unrelated),
            ]),
        );

        let mut clusterings = BTreeMap::new();
        clusterings.insert(
            Name::new("frontend"),
            clustering("frontend", vec!["requests"]),
        );
        clusterings.insert(
            Name::new("backend"),
            clustering("backend", vec!["queries", "noise"]),
        );

        let mut call_graph = CallGraph::new();
        call_graph.record_call("frontend", "backend");
        (series, clusterings, call_graph)
    }

    #[test]
    fn detects_the_true_dependency_and_its_direction() {
        let (series, clusterings, call_graph) = scenario();
        let config = SieveConfig::default().with_parallelism(1);
        let graph = identify_dependencies(&series, &clusterings, &call_graph, &config).unwrap();

        assert!(graph.has_component_edge("frontend", "backend"));
        let edges = graph.edges_between("frontend", "backend");
        assert!(edges
            .iter()
            .any(|e| e.source_metric == "requests" && e.target_metric == "queries"));
        // The unrelated noise metric does not get an edge from requests.
        assert!(!edges.iter().any(|e| e.target_metric == "noise"));
        // The detected lag is a small multiple of the interval.
        let edge = edges.iter().find(|e| e.target_metric == "queries").unwrap();
        assert!(
            edge.lag_ms >= 500 && edge.lag_ms <= 1500,
            "lag {}",
            edge.lag_ms
        );
        assert!(edge.p_value < 0.05);
    }

    #[test]
    fn parallel_and_serial_execution_produce_identical_graphs() {
        let (series, clusterings, call_graph) = scenario();
        let serial = identify_dependencies(
            &series,
            &clusterings,
            &call_graph,
            &SieveConfig::default().with_parallelism(1),
        )
        .unwrap();
        let parallel = identify_dependencies(
            &series,
            &clusterings,
            &call_graph,
            &SieveConfig::default().with_parallelism(4),
        )
        .unwrap();
        // Same edges in the same order, with identical statistics — the
        // executor guarantees plan-order results.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cached_and_naive_granger_paths_produce_identical_graphs() {
        // The causality engine must be a pure caching policy: across every
        // combination of engine toggle and executor degree the dependency
        // graph is bit-identical (edges, order, p-values, F statistics,
        // lags).
        let (series, clusterings, call_graph) = scenario();
        let mut graphs = Vec::new();
        for parallelism in [1usize, 4, 8] {
            for use_cache in [true, false] {
                let config = SieveConfig::default()
                    .with_parallelism(parallelism)
                    .with_granger_cache(use_cache);
                graphs.push(
                    identify_dependencies(&series, &clusterings, &call_graph, &config).unwrap(),
                );
            }
        }
        let reference = &graphs[0];
        assert!(reference.edge_count() > 0, "scenario must produce edges");
        for g in &graphs[1..] {
            assert_eq!(reference, g, "all six configurations must agree");
        }
        for (a, b) in reference.edges().iter().zip(graphs[1].edges().iter()) {
            assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
            assert_eq!(a.f_statistic.to_bits(), b.f_statistic.to_bits());
            assert_eq!(a.lag_ms, b.lag_ms);
        }
    }

    #[test]
    fn comparison_planning_respects_the_call_graph() {
        let (_, clusterings, call_graph) = scenario();
        // 1 caller representative x 2 callee representatives, both directions.
        assert_eq!(planned_comparison_count(&call_graph, &clusterings), 4);
        // The naive plan tests all metrics of all component pairs.
        assert_eq!(naive_comparison_count(&clusterings), 4);
        // With more components not in the call graph, the naive count grows
        // but the planned count does not.
        let mut clusterings2 = clusterings.clone();
        clusterings2.insert(Name::new("idle"), clustering("idle", vec!["m1", "m2"]));
        assert_eq!(planned_comparison_count(&call_graph, &clusterings2), 4);
        assert!(naive_comparison_count(&clusterings2) > 4);
    }

    #[test]
    fn components_without_clustering_are_skipped() {
        let (series, mut clusterings, call_graph) = scenario();
        clusterings.remove("backend");
        let graph = identify_dependencies(
            &series,
            &clusterings,
            &call_graph,
            &SieveConfig::default().with_parallelism(1),
        )
        .unwrap();
        assert_eq!(graph.edge_count(), 0);
        // Both components still appear as nodes (one from the clusterings,
        // one from the call graph).
        assert_eq!(graph.component_count(), 2);
    }

    #[test]
    fn self_calls_do_not_produce_comparisons() {
        let (series, clusterings, mut call_graph) = scenario();
        call_graph.record_call("backend", "backend");
        let graph = identify_dependencies(
            &series,
            &clusterings,
            &call_graph,
            &SieveConfig::default().with_parallelism(1),
        )
        .unwrap();
        assert!(graph.edges_between("backend", "backend").is_empty());
    }

    #[test]
    fn mutually_causal_metric_pairs_are_filtered_out() {
        // x and y drive each other (shifted copies of a common signal), so
        // Granger finds significance in both directions — the classic
        // hidden-common-cause artefact §3.3 filters.
        let n = 240;
        let base: Vec<f64> = (0..n)
            .map(|i| 40.0 + 25.0 * ((i as f64) * 0.25).sin() + 2.0 * noise(i, 11))
            .collect();
        let x: Vec<f64> = (0..n).map(|i| base[i] + 0.5 * noise(i, 12)).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i == 0 {
                    0.0
                } else {
                    base[i - 1] + 0.5 * noise(i, 13)
                }
            })
            .collect();

        let mut series = BTreeMap::new();
        series.insert(
            Name::new("a"),
            PreparedComponent::from_rows(vec![(Name::new("x"), x)]),
        );
        series.insert(
            Name::new("b"),
            PreparedComponent::from_rows(vec![(Name::new("y"), y)]),
        );
        let mut clusterings = BTreeMap::new();
        clusterings.insert(Name::new("a"), clustering("a", vec!["x"]));
        clusterings.insert(Name::new("b"), clustering("b", vec!["y"]));
        let mut call_graph = CallGraph::new();
        call_graph.record_call("a", "b");

        let config = SieveConfig::default().with_parallelism(1);

        // Sanity-check the setup: both directions really are significant
        // before filtering (otherwise this test would pass vacuously).
        let forward = sieve_causality::granger::granger_causes(
            series["a"].series(0),
            series["b"].series(0),
            &config.granger,
        )
        .unwrap();
        let backward = sieve_causality::granger::granger_causes(
            series["b"].series(0),
            series["a"].series(0),
            &config.granger,
        )
        .unwrap();
        assert!(
            forward.causal && backward.causal,
            "scenario must be bidirectionally causal (forward p={}, backward p={})",
            forward.p_value,
            backward.p_value
        );

        let graph = identify_dependencies(&series, &clusterings, &call_graph, &config).unwrap();
        assert_eq!(
            graph.edge_count(),
            0,
            "bidirectional x<->y edges must be dropped"
        );
        // The components themselves are still registered as nodes.
        assert_eq!(graph.component_count(), 2);
    }

    #[test]
    fn missing_prepared_series_produce_no_edges() {
        let (_, clusterings, call_graph) = scenario();
        // Clusterings reference metrics that have no prepared series at all.
        let empty: BTreeMap<Name, PreparedComponent> = BTreeMap::new();
        let graph = identify_dependencies(
            &empty,
            &clusterings,
            &call_graph,
            &SieveConfig::default().with_parallelism(2),
        )
        .unwrap();
        assert_eq!(graph.edge_count(), 0);
    }
}
