use std::fmt;

/// Errors produced by the Sieve pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum SieveError {
    /// No metrics were found for analysis (empty store or everything was
    /// filtered out).
    NoMetrics {
        /// Scope in which no metrics were found (e.g. a component name).
        scope: String,
    },
    /// The configuration is invalid.
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// A time-series operation failed.
    TimeSeries(sieve_timeseries::TimeSeriesError),
    /// A clustering operation failed.
    Cluster(sieve_cluster::ClusterError),
    /// A causality test failed.
    Causality(sieve_causality::CausalityError),
    /// The application simulator reported an error while loading the
    /// application.
    Simulator(sieve_simulator::SimulatorError),
}

impl fmt::Display for SieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SieveError::NoMetrics { scope } => write!(f, "no usable metrics in {scope}"),
            SieveError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SieveError::TimeSeries(e) => write!(f, "time-series error: {e}"),
            SieveError::Cluster(e) => write!(f, "clustering error: {e}"),
            SieveError::Causality(e) => write!(f, "causality error: {e}"),
            SieveError::Simulator(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for SieveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SieveError::TimeSeries(e) => Some(e),
            SieveError::Cluster(e) => Some(e),
            SieveError::Causality(e) => Some(e),
            SieveError::Simulator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sieve_timeseries::TimeSeriesError> for SieveError {
    fn from(e: sieve_timeseries::TimeSeriesError) -> Self {
        SieveError::TimeSeries(e)
    }
}

impl From<sieve_cluster::ClusterError> for SieveError {
    fn from(e: sieve_cluster::ClusterError) -> Self {
        SieveError::Cluster(e)
    }
}

impl From<sieve_causality::CausalityError> for SieveError {
    fn from(e: sieve_causality::CausalityError) -> Self {
        SieveError::Causality(e)
    }
}

impl From<sieve_simulator::SimulatorError> for SieveError {
    fn from(e: sieve_simulator::SimulatorError) -> Self {
        SieveError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_work() {
        let e = SieveError::NoMetrics {
            scope: "component web".into(),
        };
        assert!(e.to_string().contains("web"));
        assert!(std::error::Error::source(&e).is_none());

        let e: SieveError = sieve_timeseries::TimeSeriesError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: SieveError = sieve_cluster::ClusterError::NoData.into();
        assert!(!e.to_string().is_empty());
        let e: SieveError = sieve_causality::CausalityError::SingularMatrix.into();
        assert!(!e.to_string().is_empty());
        let e: SieveError =
            sieve_simulator::SimulatorError::InvalidSpec { reason: "x".into() }.into();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SieveError>();
    }
}
