//! The end-to-end Sieve pipeline.
//!
//! [`load_application`] implements step 1 (run the application under load,
//! record metrics and the call graph); [`Sieve::analyze`] chains steps 2 and
//! 3 on recorded data; [`Sieve::analyze_application`] does all three in one
//! call, which is what the examples and the benchmark harness use.
//!
//! Both parallel stages — per-component reduction (step 2) and per-edge
//! Granger testing (step 3) — run through the shared
//! [`sieve_exec::par_map_chunks`] executor. The executor returns results in
//! input order, so a `parallelism = 1` run and a `parallelism = N` run
//! produce *identical* [`SieveModel`]s, not merely equivalent ones.

use crate::columnar::PreparedComponent;
use crate::config::SieveConfig;
use crate::model::SieveModel;
use crate::reduce::prepare_row;
use crate::session::AnalysisSession;
use crate::{Result, SieveError};
use sieve_exec::{par_map_chunks, Name};
use sieve_graph::CallGraph;
use sieve_simulator::app::AppSpec;
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::store::{MetricStore, RetentionPolicy};
use sieve_simulator::workload::Workload;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default duration of the offline loading phase (step 1), in milliseconds.
pub const DEFAULT_LOAD_DURATION_MS: u64 = 150_000;

/// Step 1: loads the application under the given workload and records every
/// exported metric plus the component call graph.
///
/// The finished simulation is consumed via [`Simulation::into_parts`], so
/// the recorded store and call graph are moved out, not copied.
///
/// # Errors
///
/// Propagates simulator errors (invalid specs or parameters).
pub fn load_application(
    spec: &AppSpec,
    workload: &Workload,
    seed: u64,
    duration_ms: u64,
    interval_ms: u64,
) -> Result<(MetricStore, CallGraph)> {
    load_application_with_retention(
        spec,
        workload,
        seed,
        duration_ms,
        interval_ms,
        RetentionPolicy::unbounded(),
    )
}

/// Same as [`load_application`] with an explicit store [`RetentionPolicy`]:
/// the recorded store keeps only the retained window of each series, so a
/// bounded policy models analysing a long-running service whose monitoring
/// database evicts old points. [`Sieve::analyze_application`] routes
/// through this with `SieveConfig::retention`.
///
/// # Errors
///
/// Propagates simulator errors (invalid specs or parameters).
pub fn load_application_with_retention(
    spec: &AppSpec,
    workload: &Workload,
    seed: u64,
    duration_ms: u64,
    interval_ms: u64,
    retention: RetentionPolicy,
) -> Result<(MetricStore, CallGraph)> {
    let sim_config = SimConfig::new(seed)
        .with_tick_ms(interval_ms)
        .with_duration_ms(duration_ms)
        .with_retention(retention);
    let mut simulation =
        Simulation::new(spec.clone(), workload.clone(), sim_config).map_err(SieveError::from)?;
    simulation.run_to_completion();
    Ok(simulation.into_parts())
}

/// Prepares the series of the given components (in parallel through the
/// shared executor, output index-aligned with `components`). Shared by
/// [`Sieve::prepare`] (all components) and the incremental session (the
/// dirty subset): preparation is per-component, so preparing a subset
/// yields bit-identical series to preparing everything.
pub(crate) fn prepare_components(
    store: &MetricStore,
    components: &[Name],
    config: &SieveConfig,
) -> Vec<PreparedComponent> {
    par_map_chunks(config.parallelism, components, |component| {
        // Resample straight off the store's zero-copy window views — no
        // per-series clone between the store and the resampler. The rows
        // go through the same `prepare_row` rule as `prepare_series`, so
        // this path stays bit-identical to preparing owned copies.
        let mut rows: Vec<(Name, Vec<f64>)> = Vec::new();
        store.for_each_series_of(component.as_str(), |id, view| {
            if let Some(values) = prepare_row(view, config.interval_ms) {
                rows.push((id.metric.clone(), values));
            }
        });
        PreparedComponent::from_rows(rows)
    })
}

/// The Sieve analysis pipeline.
#[derive(Debug, Clone, Default)]
pub struct Sieve {
    config: SieveConfig,
}

impl Sieve {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: SieveConfig) -> Self {
        Self { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SieveConfig {
        &self.config
    }

    /// Prepares (resamples and truncates) the series of every component in
    /// the store, in parallel through the shared executor (component order
    /// is preserved). Each component's series come back packed into one
    /// columnar, `Arc`-shared [`PreparedComponent`] arena: steps 2 and 3
    /// both read views of these buffers without re-copying them.
    pub fn prepare(&self, store: &MetricStore) -> BTreeMap<Name, PreparedComponent> {
        let components = store.components();
        let prepared = prepare_components(store, &components, &self.config);
        components.into_iter().zip(prepared).collect()
    }

    /// Steps 2 and 3 on already-recorded data: a fresh
    /// [`AnalysisSession`] with every component dirty, refreshed once —
    /// the batch and incremental paths share this single code path, which
    /// is what makes their models bit-identical by construction.
    ///
    /// # Errors
    ///
    /// * [`SieveError::NoMetrics`] when the store is empty.
    /// * Propagates configuration, clustering and causality errors.
    ///
    /// # Example
    ///
    /// ```
    /// use sieve_core::config::SieveConfig;
    /// use sieve_core::pipeline::Sieve;
    /// use sieve_graph::CallGraph;
    /// use sieve_simulator::store::{MetricId, MetricStore};
    ///
    /// // Two components, each exporting a varying and a constant metric;
    /// // the frontend calls the backend.
    /// let store = MetricStore::new();
    /// for t in 0..80u64 {
    ///     let x = t as f64 * 0.2;
    ///     store.record(&MetricId::new("frontend", "requests"), t * 500, 30.0 + 10.0 * x.sin());
    ///     store.record(&MetricId::new("frontend", "threads_max"), t * 500, 64.0);
    ///     store.record(&MetricId::new("backend", "queries"), t * 500, 55.0 + 20.0 * (x - 0.4).sin());
    ///     store.record(&MetricId::new("backend", "pool_size"), t * 500, 16.0);
    /// }
    /// let mut call_graph = CallGraph::new();
    /// call_graph.record_calls("frontend", "backend", 100);
    ///
    /// let sieve = Sieve::new(SieveConfig::default().with_cluster_range(2, 2).with_parallelism(1));
    /// let model = sieve.analyze("shop", &store, &call_graph)?;
    ///
    /// // The constant metrics are filtered before clustering...
    /// assert!(model.clustering_of("frontend").unwrap().filtered_metrics.contains(&"threads_max".into()));
    /// // ...and the metric space shrinks to the representatives.
    /// assert!(model.total_representative_count() <= model.total_metric_count());
    /// assert_eq!(model.clusterings.len(), 2);
    /// # Ok::<(), sieve_core::SieveError>(())
    /// ```
    pub fn analyze(
        &self,
        application: &str,
        store: &MetricStore,
        call_graph: &CallGraph,
    ) -> Result<SieveModel> {
        self.config.validate()?;
        if store.series_count() == 0 {
            return Err(SieveError::NoMetrics {
                scope: format!("application {application}"),
            });
        }
        let mut session = AnalysisSession::new(
            application,
            store.clone(),
            call_graph.clone(),
            self.config.clone(),
        )?;
        let model = session.refresh_shared()?;
        // Dropping the throwaway session releases its snapshot reference,
        // so the batch path takes ownership of the model without paying
        // for a deep clone.
        drop(session);
        Ok(Arc::try_unwrap(model).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Runs all three steps: loads `spec` under `workload` (for
    /// [`DEFAULT_LOAD_DURATION_MS`]) and analyses the recorded data.
    ///
    /// # Errors
    ///
    /// Propagates loading and analysis errors.
    pub fn analyze_application(
        &self,
        spec: &AppSpec,
        workload: &Workload,
        seed: u64,
    ) -> Result<SieveModel> {
        self.analyze_application_for(spec, workload, seed, DEFAULT_LOAD_DURATION_MS)
    }

    /// Same as [`Sieve::analyze_application`] with an explicit loading
    /// duration.
    ///
    /// # Errors
    ///
    /// Propagates loading and analysis errors.
    pub fn analyze_application_for(
        &self,
        spec: &AppSpec,
        workload: &Workload,
        seed: u64,
        duration_ms: u64,
    ) -> Result<SieveModel> {
        let (store, call_graph) = load_application_with_retention(
            spec,
            workload,
            seed,
            duration_ms,
            self.config.interval_ms,
            self.config.retention,
        )?;
        self.analyze(&spec.name, &store, &call_graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::app::{CallSpec, ComponentSpec};
    use sieve_simulator::metrics::{MetricBehavior, MetricSpec};

    /// A small three-component app with clear metric families.
    fn small_app() -> AppSpec {
        let mut app = AppSpec::new("small", "lb");
        app.add_component(
            ComponentSpec::new("lb")
                .with_capacity(200.0)
                .with_metric(MetricSpec::gauge(
                    "lb_requests_per_second",
                    MetricBehavior::load_proportional(1.0),
                ))
                .with_metric(MetricSpec::gauge(
                    "lb_cpu_usage",
                    MetricBehavior::cpu_like(0.4),
                ))
                .with_metric(MetricSpec::gauge(
                    "lb_buffer_size",
                    MetricBehavior::constant(128.0),
                )),
        );
        app.add_component(
            ComponentSpec::new("api")
                .with_capacity(100.0)
                .with_metric(MetricSpec::gauge(
                    "api_requests_per_second",
                    MetricBehavior::load_proportional(1.0),
                ))
                .with_metric(MetricSpec::gauge(
                    "api_latency_ms",
                    MetricBehavior::latency(40.0, 90.0),
                ))
                .with_metric(MetricSpec::gauge(
                    "api_cpu_usage",
                    MetricBehavior::cpu_like(1.0),
                ))
                .with_metric(MetricSpec::gauge(
                    "api_threads_max",
                    MetricBehavior::constant(32.0),
                )),
        );
        app.add_component(
            ComponentSpec::new("db")
                .with_capacity(300.0)
                .with_metric(MetricSpec::gauge(
                    "db_queries_per_second",
                    MetricBehavior::load_proportional(2.0),
                ))
                .with_metric(MetricSpec::gauge(
                    "db_query_time_ms",
                    MetricBehavior::latency(5.0, 250.0),
                ))
                .with_metric(MetricSpec::counter(
                    "db_bytes_written_total",
                    MetricBehavior::counter(100.0),
                )),
        );
        app.add_call(CallSpec::new("lb", "api").with_lag_ms(500));
        app.add_call(CallSpec::new("api", "db").with_fanout(2.0).with_lag_ms(500));
        app
    }

    fn fast_config() -> SieveConfig {
        SieveConfig::default()
            .with_cluster_range(2, 3)
            .with_parallelism(2)
    }

    #[test]
    fn end_to_end_analysis_reduces_metrics_and_finds_dependencies() {
        let app = small_app();
        let sieve = Sieve::new(fast_config());
        let model = sieve
            .analyze_application_for(&app, &Workload::randomized(80.0, 3), 11, 120_000)
            .unwrap();

        assert_eq!(model.application, "small");
        assert_eq!(model.clusterings.len(), 3);
        // Constants are filtered.
        let lb = model.clustering_of("lb").unwrap();
        assert!(lb.filtered_metrics.iter().any(|m| m == "lb_buffer_size"));
        // The metric space shrinks.
        assert!(model.total_representative_count() < model.total_metric_count());
        assert!(model.overall_reduction_factor() > 1.0);
        // Dependencies follow the call graph topology: lb -> api and api -> db.
        assert!(model.dependency_graph.has_component_edge("lb", "api"));
        assert!(model.dependency_graph.has_component_edge("api", "db"));
        // No fabricated edge between components that never communicate.
        assert!(model.dependency_graph.edges_between("lb", "db").is_empty());
    }

    #[test]
    fn analyze_fails_on_an_empty_store() {
        let sieve = Sieve::new(SieveConfig::default());
        let store = MetricStore::new();
        let graph = CallGraph::new();
        assert!(matches!(
            sieve.analyze("empty", &store, &graph),
            Err(SieveError::NoMetrics { .. })
        ));
    }

    #[test]
    fn analyze_rejects_invalid_configuration() {
        let app = small_app();
        let (store, graph) =
            load_application(&app, &Workload::constant(10.0), 1, 60_000, 500).unwrap();
        let sieve = Sieve::new(SieveConfig::default().with_interval_ms(0));
        assert!(matches!(
            sieve.analyze("small", &store, &graph),
            Err(SieveError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn load_application_records_everything() {
        let app = small_app();
        let (store, graph) =
            load_application(&app, &Workload::constant(20.0), 5, 60_000, 500).unwrap();
        assert_eq!(store.series_count(), app.total_metric_count());
        assert_eq!(graph.component_count(), 3);
        assert!(graph.has_edge("api", "db"));
        // 120 ticks of 500 ms.
        assert_eq!(
            store
                .series(&sieve_simulator::store::MetricId::new(
                    "db",
                    "db_queries_per_second"
                ))
                .unwrap()
                .len(),
            120
        );
    }

    #[test]
    fn cached_and_naive_distance_paths_produce_identical_models() {
        // The shared SBD engine (spectra + distance matrix) must be a pure
        // optimisation: across the serial and parallel executor configs, the
        // cached and naive reduction paths must emit bit-identical models.
        let app = small_app();
        let (store, graph) =
            load_application(&app, &Workload::randomized(60.0, 1), 9, 90_000, 500).unwrap();
        let mut models = Vec::new();
        for parallelism in [1usize, 8] {
            for use_cache in [true, false] {
                let sieve = Sieve::new(
                    fast_config()
                        .with_parallelism(parallelism)
                        .with_sbd_cache(use_cache),
                );
                models.push(sieve.analyze("small", &store, &graph).unwrap());
            }
        }
        for m in &models[1..] {
            assert_eq!(&models[0], m, "all four configurations must agree");
        }
    }

    #[test]
    fn cached_and_naive_granger_paths_produce_identical_models() {
        // The shared causality engine (prepared series + memoized
        // restricted fits) must be a pure optimisation: across the serial
        // and parallel executor configs, the cached and naive dependency
        // paths must emit bit-identical models.
        let app = small_app();
        let (store, graph) =
            load_application(&app, &Workload::randomized(60.0, 1), 9, 90_000, 500).unwrap();
        let mut models = Vec::new();
        for parallelism in [1usize, 4, 8] {
            for use_cache in [true, false] {
                let sieve = Sieve::new(
                    fast_config()
                        .with_parallelism(parallelism)
                        .with_granger_cache(use_cache),
                );
                models.push(sieve.analyze("small", &store, &graph).unwrap());
            }
        }
        assert!(
            models[0].dependency_graph.edge_count() > 0,
            "scenario must produce dependency edges"
        );
        for m in &models[1..] {
            assert_eq!(&models[0], m, "all six configurations must agree");
        }
    }

    #[test]
    fn serial_and_parallel_pipelines_produce_identical_models() {
        let app = small_app();
        let (store, graph) =
            load_application(&app, &Workload::randomized(60.0, 1), 9, 90_000, 500).unwrap();
        let serial = Sieve::new(fast_config().with_parallelism(1))
            .analyze("small", &store, &graph)
            .unwrap();
        let parallel = Sieve::new(fast_config().with_parallelism(8))
            .analyze("small", &store, &graph)
            .unwrap();

        // Full structural equality: clusterings (members, representatives,
        // scores), dependency edges with their lags and statistics — not
        // just matching counts.
        assert_eq!(serial, parallel);

        // Spell out the load-bearing pieces so a regression pinpoints
        // itself even if `SieveModel`'s PartialEq ever loosens.
        assert_eq!(serial.clusterings, parallel.clusterings);
        for (s, p) in serial
            .dependency_graph
            .edges()
            .iter()
            .zip(parallel.dependency_graph.edges())
        {
            assert_eq!(s, p);
        }
        assert_eq!(
            serial.dependency_graph.edge_count(),
            parallel.dependency_graph.edge_count()
        );
        assert_eq!(
            serial
                .clusterings
                .values()
                .map(|c| c.representatives())
                .collect::<Vec<_>>(),
            parallel
                .clusterings
                .values()
                .map(|c| c.representatives())
                .collect::<Vec<_>>()
        );
    }
}
