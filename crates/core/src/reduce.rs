//! Step 2 of the pipeline: metric reduction.
//!
//! Per component, Sieve (§3.2):
//!
//! 1. drops metrics that do not vary with the applied load ("constant trend
//!    or low variance (var ≤ 0.002)");
//! 2. reconstructs missing samples with cubic splines and discretises every
//!    series onto a 500 ms grid;
//! 3. clusters the remaining series with k-Shape, warm-started from metric
//!    *name* similarity, choosing the cluster count by the best silhouette
//!    score under the shape-based distance; and
//! 4. picks the member closest to each cluster centroid as that cluster's
//!    *representative metric*.
//!
//! The variance threshold is applied to a scale-free variance
//! (`var / (mean² + var)`), because the simulator's metrics — like real
//! monitoring data — span wildly different units; a raw threshold of 0.002
//! would keep a byte counter that is constant up to rounding noise and drop
//! a perfectly informative ratio metric.
//!
//! Prepared series live in one columnar [`PreparedComponent`] arena per
//! component (a single `Arc`-shared backing buffer): the reduction here and
//! the dependency identification of step 3 read the *same* buffer, and the
//! k-Shape/silhouette calls below borrow contiguous views of it without
//! copying.
//!
//! The k sweep itself runs on the shared SBD engine by default
//! (`SieveConfig::use_sbd_cache`): per-series spectra and the pairwise
//! distance matrix are computed once per component and reused by every
//! candidate `k`, with the direct-SBD path kept as the bit-identical
//! reference oracle.

use crate::columnar::PreparedComponent;
use crate::config::SieveConfig;
use crate::model::{ComponentClustering, MetricCluster};
use crate::Result;
use sieve_cluster::distance::{compute_spectra, DistanceMatrix};
use sieve_cluster::jaro::pre_cluster_names;
use sieve_cluster::kshape::{KShape, KShapeConfig, KShapeResult, KShapeSeriesCache};
use sieve_cluster::silhouette::{silhouette_score_from_matrix, silhouette_score_sbd};
use sieve_exec::Name;
use sieve_timeseries::sbd::shape_based_distance;
use sieve_timeseries::spectrum::{sbd_from_spectra, SeriesSpectrum};
use sieve_timeseries::stats::{mean, variance};
use sieve_timeseries::{resample, SeriesView, TimeSeries};
use std::sync::Arc;

/// A named, resampled metric series ready for clustering.
///
/// The values live behind an `Arc`, so cloning a `NamedSeries` (or the whole
/// prepared map) shares the buffer instead of copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedSeries {
    /// Metric name.
    pub name: Name,
    /// Values on the common discretisation grid, shared between pipeline
    /// stages.
    pub values: Arc<[f64]>,
}

impl NamedSeries {
    /// Creates a named series, interning the name and sharing the values.
    pub fn new(name: impl Into<Name>, values: impl Into<Arc<[f64]>>) -> Self {
        Self {
            name: name.into(),
            values: values.into(),
        }
    }
}

/// Resamples one raw series onto the common grid, returning the grid
/// values; `None` for series too short to resample (fewer than two
/// points).
///
/// This is the single preparation rule shared by [`prepare_series`]
/// (owned series) and the pipeline's zero-copy read of store windows, so
/// both paths are bit-identical by construction.
pub(crate) fn prepare_row(series: SeriesView<'_>, interval_ms: u64) -> Option<Vec<f64>> {
    if series.len() < 2 {
        return None;
    }
    let resampled = resample::resample_view(series, interval_ms).ok()?;
    Some(resampled.into_parts().1)
}

/// Resamples a set of raw metric series of one component onto the common
/// grid and packs them, truncated to a common length, into one columnar
/// [`PreparedComponent`] arena.
///
/// Series that are empty or too short to resample are skipped.
pub fn prepare_series(raw: &[(Name, TimeSeries)], interval_ms: u64) -> PreparedComponent {
    let resampled: Vec<(Name, Vec<f64>)> = raw
        .iter()
        .filter_map(|(name, series)| Some((name.clone(), prepare_row(series.view(), interval_ms)?)))
        .collect();
    // `from_rows` truncates every row to the shortest one, which is exactly
    // the rectangularisation rule this step has always applied.
    PreparedComponent::from_rows(resampled)
}

/// Scale-free variance used by the unvarying-metric filter.
pub fn relative_variance(values: &[f64]) -> f64 {
    let var = variance(values);
    if var == 0.0 {
        return 0.0;
    }
    let m = mean(values);
    var / (m * m + var)
}

/// Whether a metric should be dropped as unvarying under the configured
/// threshold.
pub fn is_unvarying(values: &[f64], threshold: f64) -> bool {
    relative_variance(values) <= threshold
}

/// Runs the full metric-reduction step for one component.
///
/// # Errors
///
/// Propagates clustering failures; an empty input or a component where every
/// metric is filtered out produces a clustering with zero clusters rather
/// than an error.
pub fn reduce_component(
    component: impl Into<Name>,
    prepared: &PreparedComponent,
    config: &SieveConfig,
) -> Result<ComponentClustering> {
    let component = component.into();
    let total_metrics = prepared.len();

    // 1. Variance filter.
    let mut filtered_metrics = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    for i in 0..prepared.len() {
        let values = prepared.series(i);
        if values.len() < 4 || is_unvarying(values, config.variance_threshold) {
            filtered_metrics.push(prepared.name(i).clone());
        } else {
            kept.push(i);
        }
    }

    if kept.is_empty() {
        return Ok(ComponentClustering {
            component,
            total_metrics,
            filtered_metrics,
            clusters: Vec::new(),
            silhouette: 0.0,
            chosen_k: 0,
        });
    }
    if kept.len() == 1 {
        return Ok(ComponentClustering {
            component,
            total_metrics,
            filtered_metrics,
            clusters: vec![MetricCluster {
                members: vec![prepared.name(kept[0]).clone()],
                representative: prepared.name(kept[0]).clone(),
                representative_distance: 0.0,
            }],
            silhouette: 0.0,
            chosen_k: 1,
        });
    }

    // Borrow contiguous views of the columnar arena — no per-stage copies
    // of the series data.
    let data: Vec<&[f64]> = kept.iter().map(|&i| prepared.series(i)).collect();
    let kept_names: Vec<&Name> = kept.iter().map(|&i| prepared.name(i)).collect();
    let names: Vec<&str> = kept_names.iter().map(|n| n.as_str()).collect();

    // 2. Try every k in the configured range and keep the best silhouette,
    // then 3. pick each cluster's representative. The cached path computes
    // every per-series spectrum and the full pairwise distance matrix once
    // and reuses them across the whole sweep; the naive path recomputes
    // every distance from scratch. Both are bit-identical (asserted by
    // tests and the benches).
    let (silhouette, chosen_k, clusters) = if config.use_sbd_cache {
        sweep_cached(&data, &names, &kept_names, config)?
    } else {
        sweep_naive(&data, &names, &kept_names, config)?
    };

    Ok(ComponentClustering {
        component,
        total_metrics,
        filtered_metrics,
        clusters,
        silhouette,
        chosen_k,
    })
}

/// The k sweep and representative selection on the shared SBD engine: one
/// spectrum per kept series, one [`DistanceMatrix`] per component (built
/// through `sieve_exec::par_map_chunks`), one [`KShapeSeriesCache`] shared
/// by every `k`.
fn sweep_cached(
    data: &[&[f64]],
    names: &[&str],
    kept: &[&Name],
    config: &SieveConfig,
) -> Result<(f64, usize, Vec<MetricCluster>)> {
    // Spectra of the *raw* prepared series drive the silhouette matrix and
    // the centroid-to-member representative distances; the k-Shape cache
    // holds its own spectra of the z-normalized copies.
    let spectra = compute_spectra(data, config.parallelism)?;
    let matrix = DistanceMatrix::from_spectra(&spectra, config.parallelism)?;
    let kshape_cache = KShapeSeriesCache::new_parallel(data, config.parallelism)?;

    let max_k = config.max_clusters.min(data.len().saturating_sub(1)).max(1);
    let min_k = config.min_clusters.min(max_k);
    let mut best: Option<(f64, KShapeResult, usize)> = None;
    for k in min_k..=max_k {
        let init = pre_cluster_names(names, k);
        let kshape_config = KShapeConfig::new(k)
            .with_max_iterations(config.kshape_max_iterations)
            .with_initial_assignment(init);
        let result = KShape::new(kshape_config).fit_cached(&kshape_cache)?;
        let score = silhouette_score_from_matrix(&matrix, &result.assignments)?;
        let better = match &best {
            None => true,
            Some((best_score, _, _)) => score > *best_score,
        };
        if better {
            best = Some((score, result, k));
        }
    }
    let (silhouette, result, chosen_k) = best.expect("at least one k was evaluated");

    let clusters = build_clusters(&result, chosen_k, kept, |centroid, members| {
        // One centroid spectrum serves the whole cluster.
        match SeriesSpectrum::compute(centroid) {
            Ok(cs) => members
                .iter()
                .map(|&idx| {
                    sbd_from_spectra(&cs, &spectra[idx])
                        .map(|r| r.distance)
                        .unwrap_or(2.0)
                })
                .collect(),
            Err(_) => vec![2.0; members.len()],
        }
    });
    Ok((silhouette, chosen_k, clusters))
}

/// The direct-SBD reference path: every distance re-z-normalizes and
/// re-FFTs both operands. Kept as the oracle the cached path is benchmarked
/// and equality-tested against.
fn sweep_naive(
    data: &[&[f64]],
    names: &[&str],
    kept: &[&Name],
    config: &SieveConfig,
) -> Result<(f64, usize, Vec<MetricCluster>)> {
    let max_k = config.max_clusters.min(data.len().saturating_sub(1)).max(1);
    let min_k = config.min_clusters.min(max_k);
    let mut best: Option<(f64, KShapeResult, usize)> = None;
    for k in min_k..=max_k {
        let init = pre_cluster_names(names, k);
        let kshape_config = KShapeConfig::new(k)
            .with_max_iterations(config.kshape_max_iterations)
            .with_initial_assignment(init);
        let result = KShape::new(kshape_config).fit(data)?;
        let score = silhouette_score_sbd(data, &result.assignments)?;
        let better = match &best {
            None => true,
            Some((best_score, _, _)) => score > *best_score,
        };
        if better {
            best = Some((score, result, k));
        }
    }
    let (silhouette, result, chosen_k) = best.expect("at least one k was evaluated");

    let clusters = build_clusters(&result, chosen_k, kept, |centroid, members| {
        members
            .iter()
            .map(|&idx| {
                shape_based_distance(centroid, data[idx])
                    .map(|r| r.distance)
                    .unwrap_or(2.0)
            })
            .collect()
    });
    Ok((silhouette, chosen_k, clusters))
}

/// Builds the final clusters, picking as each cluster's representative the
/// member with the smallest centroid distance. `centroid_distances` is
/// called once per non-zero centroid with the full member-index list so
/// implementations can share per-centroid work (e.g. one spectrum per
/// cluster) and must return one distance per member, in order.
fn build_clusters(
    result: &KShapeResult,
    chosen_k: usize,
    kept: &[&Name],
    centroid_distances: impl Fn(&[f64], &[usize]) -> Vec<f64>,
) -> Vec<MetricCluster> {
    let mut clusters = Vec::new();
    for c in 0..chosen_k {
        let member_indices = result.members_of(c);
        if member_indices.is_empty() {
            continue;
        }
        let centroid = &result.centroids[c];
        let distances = if centroid.iter().all(|&v| v == 0.0) {
            vec![0.0; member_indices.len()]
        } else {
            centroid_distances(centroid, &member_indices)
        };
        let mut representative = member_indices[0];
        let mut best_distance = f64::INFINITY;
        for (&idx, &d) in member_indices.iter().zip(distances.iter()) {
            if d < best_distance {
                best_distance = d;
                representative = idx;
            }
        }
        clusters.push(MetricCluster {
            members: member_indices.iter().map(|&i| kept[i].clone()).collect(),
            representative: kept[representative].clone(),
            representative_distance: if best_distance.is_finite() {
                best_distance
            } else {
                0.0
            },
        });
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(name: &str, values: Vec<f64>) -> NamedSeries {
        NamedSeries::new(name, values)
    }

    fn shapes(kind: usize, scale: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| match kind {
                0 => scale * ((i as f64) * 0.4).sin() + scale,
                1 => scale * (i as f64) / len as f64 + 0.3 * scale,
                _ => scale * if i % 16 < 2 { 1.0 } else { 0.0 },
            })
            .collect()
    }

    #[test]
    fn relative_variance_is_scale_free() {
        let small: Vec<f64> = (0..50)
            .map(|i| 0.001 * ((i as f64) * 0.3).sin() + 0.01)
            .collect();
        let large: Vec<f64> = small.iter().map(|v| v * 1.0e9).collect();
        assert!((relative_variance(&small) - relative_variance(&large)).abs() < 1e-9);
    }

    #[test]
    fn unvarying_filter_drops_constants_and_near_constants() {
        assert!(is_unvarying(&vec![5.0; 100], 0.002));
        // Constant with tiny relative jitter.
        let jittery: Vec<f64> = (0..100).map(|i| 1.0e6 + ((i % 3) as f64) * 0.1).collect();
        assert!(is_unvarying(&jittery, 0.002));
        // A genuinely varying metric survives.
        let varying: Vec<f64> = (0..100)
            .map(|i| 50.0 + 30.0 * ((i as f64) * 0.3).sin())
            .collect();
        assert!(!is_unvarying(&varying, 0.002));
    }

    #[test]
    fn prepare_series_aligns_lengths() {
        let a = TimeSeries::from_values(0, 500, (0..40).map(|i| i as f64).collect());
        let b = TimeSeries::from_values(0, 1000, (0..30).map(|i| i as f64).collect());
        let short = TimeSeries::from_values(0, 500, vec![1.0]);
        let prepared = prepare_series(
            &[
                (Name::new("a"), a),
                (Name::new("b"), b),
                (Name::new("tiny"), short),
            ],
            500,
        );
        assert_eq!(prepared.len(), 2, "too-short series are skipped");
        assert_eq!(prepared.series(0).len(), prepared.series(1).len());
    }

    #[test]
    fn prepare_series_handles_empty_input() {
        let prepared = prepare_series(&[], 500);
        assert!(prepared.is_empty());
    }

    #[test]
    fn prepare_series_skips_single_point_and_empty_series() {
        let single = TimeSeries::from_values(0, 500, vec![7.0]);
        let empty = TimeSeries::new();
        let ok = TimeSeries::from_values(0, 500, (0..20).map(|i| i as f64).collect());
        let prepared = prepare_series(
            &[
                (Name::new("single"), single),
                (Name::new("empty"), empty),
                (Name::new("ok"), ok),
            ],
            500,
        );
        assert_eq!(prepared.len(), 1);
        assert_eq!(prepared.name(0), "ok");
        assert_eq!(prepared.series(0).len(), 20);
    }

    #[test]
    fn prepare_series_truncates_mixed_lengths_to_the_shortest() {
        // 80 points at 500 ms vs 10 points at 500 ms: everything is cut to
        // the shorter grid so the clustering inputs stay rectangular.
        let long = TimeSeries::from_values(0, 500, (0..80).map(|i| (i as f64).sin()).collect());
        let short = TimeSeries::from_values(0, 500, (0..10).map(|i| i as f64).collect());
        let prepared = prepare_series(
            &[(Name::new("long"), long), (Name::new("short"), short)],
            500,
        );
        assert_eq!(prepared.len(), 2);
        assert_eq!(prepared.series_len(), 10);
        assert!(prepared.iter().all(|(_, values)| values.len() == 10));
    }

    #[test]
    fn prepared_series_share_buffers_on_clone() {
        let ts = TimeSeries::from_values(0, 500, (0..20).map(|i| i as f64).collect());
        let prepared = prepare_series(&[(Name::new("m"), ts)], 500);
        let copy = prepared.clone();
        assert!(Arc::ptr_eq(copy.buffer(), prepared.buffer()));
    }

    #[test]
    fn reduce_component_groups_similar_shapes_and_picks_representatives() {
        let len = 64;
        let mut series = Vec::new();
        // Three sine-family metrics, three ramp-family metrics and two
        // constants to be filtered.
        for i in 0..3 {
            series.push(named(
                &format!("cpu_usage_{i}"),
                shapes(0, 1.0 + i as f64, len),
            ));
        }
        for i in 0..3 {
            series.push(named(
                &format!("net_bytes_{i}"),
                shapes(1, 2.0 + i as f64, len),
            ));
        }
        series.push(named("open_file_limit", vec![65536.0; len]));
        series.push(named("num_cpus", vec![4.0; len]));

        let config = SieveConfig::default().with_cluster_range(2, 4);
        let clustering =
            reduce_component("web", &PreparedComponent::from_named(&series), &config).unwrap();

        assert_eq!(clustering.total_metrics, 8);
        assert_eq!(clustering.filtered_metrics.len(), 2);
        assert!(clustering.clusters.len() >= 2);
        assert!(clustering.clusters.len() <= 4);
        // Representatives belong to their own clusters.
        for cluster in &clustering.clusters {
            assert!(cluster.contains(&cluster.representative));
        }
        // The two shape families do not share a cluster.
        let cpu_cluster = clustering.cluster_of("cpu_usage_0").unwrap();
        assert!(!cpu_cluster.contains("net_bytes_0"));
        // Reduction: 8 metrics -> at most 4 representatives.
        assert!(clustering.reduction_factor() >= 2.0);
    }

    #[test]
    fn cached_and_naive_reduction_produce_identical_clusterings() {
        let len = 64;
        let mut series = Vec::new();
        for i in 0..4 {
            series.push(named(
                &format!("cpu_usage_{i}"),
                shapes(0, 1.0 + i as f64, len),
            ));
        }
        for i in 0..4 {
            series.push(named(
                &format!("net_bytes_{i}"),
                shapes(1, 2.0 + i as f64, len),
            ));
        }
        for i in 0..3 {
            series.push(named(
                &format!("disk_iops_{i}"),
                shapes(2, 1.5 + i as f64, len),
            ));
        }
        series.push(named("flat", vec![9.0; len]));

        let base = SieveConfig::default().with_cluster_range(2, 5);
        let prepared = PreparedComponent::from_named(&series);
        let cached =
            reduce_component("web", &prepared, &base.clone().with_sbd_cache(true)).unwrap();
        let naive = reduce_component("web", &prepared, &base.with_sbd_cache(false)).unwrap();
        // Full structural equality including every representative distance
        // and silhouette value — the engine must not change a single bit.
        assert_eq!(cached, naive);
        assert_eq!(cached.silhouette.to_bits(), naive.silhouette.to_bits());
        for (c, n) in cached.clusters.iter().zip(naive.clusters.iter()) {
            assert_eq!(
                c.representative_distance.to_bits(),
                n.representative_distance.to_bits()
            );
        }
    }

    #[test]
    fn all_constant_component_yields_zero_clusters() {
        let series = vec![named("a", vec![1.0; 50]), named("b", vec![2.0; 50])];
        let clustering = reduce_component(
            "idle",
            &PreparedComponent::from_named(&series),
            &SieveConfig::default(),
        )
        .unwrap();
        assert_eq!(clustering.clusters.len(), 0);
        assert_eq!(clustering.chosen_k, 0);
        assert_eq!(clustering.filtered_metrics.len(), 2);
        assert_eq!(clustering.representatives().len(), 0);
    }

    #[test]
    fn single_varying_metric_becomes_its_own_cluster() {
        let series = vec![
            named("only", shapes(0, 1.0, 50)),
            named("flat", vec![3.0; 50]),
        ];
        let clustering = reduce_component(
            "single",
            &PreparedComponent::from_named(&series),
            &SieveConfig::default(),
        )
        .unwrap();
        assert_eq!(clustering.chosen_k, 1);
        assert_eq!(clustering.clusters.len(), 1);
        assert_eq!(clustering.clusters[0].representative, "only");
    }

    #[test]
    fn empty_component_is_handled() {
        let clustering = reduce_component(
            "none",
            &PreparedComponent::default(),
            &SieveConfig::default(),
        )
        .unwrap();
        assert_eq!(clustering.total_metrics, 0);
        assert_eq!(clustering.clusters.len(), 0);
    }
}
