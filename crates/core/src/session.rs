//! Epoch-based incremental analysis: the [`AnalysisSession`].
//!
//! [`crate::pipeline::Sieve::analyze`] is a batch pass: prepare every
//! series, cluster every component, Granger-test every call-graph edge.
//! A live deployment does not change wholesale between observations — a
//! delta touches a handful of metrics — so the session keeps the analysis
//! state alive between epochs and recomputes only what a delta dirties:
//!
//! * **Prepared series** are cached per component and rebuilt only for
//!   components with at least one touched series (preparation truncates a
//!   component's series to a common length, so one new sample can shift
//!   the whole component's prepared view — the component is the dirtiness
//!   unit here).
//! * **Clusterings** are cached per component, keyed by a content
//!   fingerprint of the component's prepared series (names + values) mixed
//!   with the statistical configuration. A re-prepared component whose
//!   prepared content came out identical keeps its clustering without
//!   re-running the k sweep.
//! * **Granger verdicts** are cached per comparison (source/target
//!   component + metric), keyed by the prepared-series fingerprints of
//!   both endpoints and the configuration. An edge is re-tested only when
//!   one of its endpoint series actually changed — not merely because some
//!   unrelated component received samples.
//!
//! Every cache key is a *content* fingerprint, never a timestamp or an
//! epoch number, and all recomputation funnels through the same
//! [`crate::reduce`]/[`crate::dependencies`] code as the batch path. The
//! result is the central guarantee of this module, asserted by tests,
//! property tests and the `incremental` bench: a session that absorbed any
//! sequence of deltas emits a [`SieveModel`] **bit-identical** to batch
//! analysis of the final store — across parallelism degrees and with the
//! SBD/Granger engines on or off.
//!
//! # Lifecycle
//!
//! ```no_run
//! use sieve_core::config::SieveConfig;
//! use sieve_core::session::AnalysisSession;
//! use sieve_simulator::engine::{SimConfig, Simulation};
//! use sieve_simulator::workload::Workload;
//! # let spec = sieve_apps::sharelatex::app_spec(sieve_apps::MetricRichness::Minimal);
//!
//! let mut sim = Simulation::new(spec, Workload::constant(40.0), SimConfig::new(7)).unwrap();
//! let mut session = AnalysisSession::new(
//!     "sharelatex",
//!     sim.store().clone(),
//!     sim.call_graph(),
//!     SieveConfig::default(),
//! )
//! .unwrap();
//! loop {
//!     let (delta, executed) = sim.step_epoch(60);
//!     if executed == 0 {
//!         break;
//!     }
//!     session.set_call_graph(sim.call_graph());
//!     let model = session.update(&delta).unwrap();
//!     println!("epoch {}: {} edges", delta.epoch, model.dependency_graph.edge_count());
//! }
//! ```

use crate::columnar::PreparedComponent;
use crate::config::SieveConfig;
use crate::dependencies::{
    assemble_graph, candidate_edges_per_comparison, comparison_plan, Comparison, SeriesKey,
};
use crate::model::{ComponentClustering, SieveModel};
use crate::pipeline::prepare_components;
use crate::reduce::reduce_component;
use crate::Result;
use sieve_exec::hash::{fingerprint_f64s, mix, mix_f64, mix_str, FINGERPRINT_SEED};
use sieve_exec::{try_par_map_chunks, Name};
use sieve_graph::{CallGraph, DependencyEdge};
use sieve_simulator::store::{MetricStore, StoreDelta};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// What one [`AnalysisSession::refresh`] actually recomputed — the
/// observable behind the "only dirty work is redone" guarantee, asserted
/// by the incremental tests and reported by the bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Epoch watermark of the last delta applied (0 before the first).
    pub epoch: u64,
    /// Components known to the session after the refresh.
    pub components_total: usize,
    /// Components whose series were re-prepared in this refresh.
    pub components_prepared: usize,
    /// Components whose k-Shape sweep was re-run in this refresh.
    pub components_reclustered: usize,
    /// Size of the comparison plan (pairs, not directions) of this refresh.
    pub comparisons_planned: usize,
    /// Comparisons actually Granger-tested (cache misses) in this refresh.
    pub comparisons_tested: usize,
}

/// Cached per-component preparation state.
#[derive(Debug, Clone)]
struct PreparedEntry {
    /// The prepared (resampled, truncated) series, packed into one
    /// columnar, `Arc`-shared [`PreparedComponent`] arena.
    prepared: PreparedComponent,
    /// Content fingerprint of each prepared series, index-aligned.
    series_fps: Vec<u64>,
    /// Combined fingerprint of the whole prepared set (names + values +
    /// configuration) — the clustering cache key.
    clustering_key: u64,
}

/// Cache key of one comparison's candidate edges: the comparison identity,
/// the content fingerprints of both endpoint series, and the statistical
/// configuration fingerprint — so a verdict can never outlive the exact
/// inputs and settings that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EdgeKey {
    source_component: Name,
    source_metric: Name,
    target_component: Name,
    target_metric: Name,
    source_fp: u64,
    target_fp: u64,
    config_fp: u64,
}

impl EdgeKey {
    fn new(cmp: &Comparison, source_fp: u64, target_fp: u64, config_fp: u64) -> Self {
        Self {
            source_component: cmp.source_component.clone(),
            source_metric: cmp.source_metric.clone(),
            target_component: cmp.target_component.clone(),
            target_metric: cmp.target_metric.clone(),
            source_fp,
            target_fp,
            config_fp,
        }
    }
}

/// Fingerprint of the statistical configuration: every field that can
/// change an analysis result. Parallelism and the SBD/Granger engine
/// toggles are deliberately excluded — they are proven result-invariant.
fn config_fingerprint(config: &SieveConfig) -> u64 {
    let mut fp = mix(FINGERPRINT_SEED, config.interval_ms);
    fp = mix_f64(fp, config.variance_threshold);
    fp = mix(fp, config.min_clusters as u64);
    fp = mix(fp, config.max_clusters as u64);
    fp = mix(fp, config.kshape_max_iterations as u64);
    fp = mix(fp, config.granger.max_lag as u64);
    fp = mix_f64(fp, config.granger.significance);
    fp = mix(fp, u64::from(config.granger.difference_non_stationary));
    mix(fp, config.granger.min_observations as u64)
}

/// A long-lived, dirty-tracking analysis of one application.
///
/// The session holds a handle to the (shared, append-only) [`MetricStore`]
/// and absorbs [`StoreDelta`]s: [`AnalysisSession::update`] re-prepares
/// only touched components, re-clusters only components whose prepared
/// content changed, re-tests only comparisons with a changed endpoint, and
/// assembles a full [`SieveModel`] from cached plus fresh state. See the
/// [module docs](self) for the cache keys and the equality guarantee.
#[derive(Debug)]
pub struct AnalysisSession {
    config: SieveConfig,
    config_fp: u64,
    application: String,
    store: MetricStore,
    call_graph: CallGraph,
    /// Prepared columnar series arenas + fingerprints per component.
    prepared: BTreeMap<Name, PreparedEntry>,
    /// Cached clustering per component, valid for `clustering_keys[name]`.
    clusterings: BTreeMap<Name, ComponentClustering>,
    clustering_keys: BTreeMap<Name, u64>,
    /// Candidate edges per comparison, stamped with the refresh generation
    /// that last used them (stale entries are pruned each refresh, so the
    /// cache stays bounded by the plan size).
    edge_cache: HashMap<EdgeKey, (u64, Vec<DependencyEdge>)>,
    generation: u64,
    /// Components that must be re-prepared at the next refresh.
    dirty: BTreeSet<Name>,
    last_epoch: u64,
    stats: SessionStats,
    /// The model produced by the last successful refresh, shared so a
    /// serving layer can hand out read-only snapshots without cloning.
    last_model: Option<Arc<SieveModel>>,
}

impl AnalysisSession {
    /// Creates a session over the given store handle and call graph. All
    /// components already in the store are marked dirty, so the first
    /// [`AnalysisSession::refresh`] (or [`AnalysisSession::update`])
    /// performs a full analysis — which is exactly what
    /// [`crate::pipeline::Sieve::analyze`] does.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SieveError::InvalidConfig`] for invalid
    /// configurations.
    pub fn new(
        application: impl Into<String>,
        store: MetricStore,
        call_graph: CallGraph,
        config: SieveConfig,
    ) -> Result<Self> {
        config.validate()?;
        let mut session = Self {
            config_fp: config_fingerprint(&config),
            config,
            application: application.into(),
            store,
            call_graph,
            prepared: BTreeMap::new(),
            clusterings: BTreeMap::new(),
            clustering_keys: BTreeMap::new(),
            edge_cache: HashMap::new(),
            generation: 0,
            dirty: BTreeSet::new(),
            last_epoch: 0,
            stats: SessionStats::default(),
            last_model: None,
        };
        session.mark_all_dirty();
        Ok(session)
    }

    /// Like [`AnalysisSession::new`], but for a store revived from a
    /// durability snapshot (`MetricStore::restore`): the session's epoch
    /// watermark is fast-forwarded to the store's current epoch, so stats
    /// and sweep bookkeeping continue from where the frozen session
    /// stopped instead of restarting at zero. Everything is marked dirty,
    /// so the first refresh performs a full analysis — and because models
    /// are pure functions of store content, that refresh publishes a model
    /// bit-identical to the one the original session served over the same
    /// store content.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SieveError::InvalidConfig`] for invalid
    /// configurations.
    pub fn rehydrated(
        application: impl Into<String>,
        store: MetricStore,
        call_graph: CallGraph,
        config: SieveConfig,
    ) -> Result<Self> {
        let mut session = Self::new(application, store, call_graph, config)?;
        session.last_epoch = session.store.epoch();
        Ok(session)
    }

    /// The session configuration.
    pub fn config(&self) -> &SieveConfig {
        &self.config
    }

    /// The analysed application's name.
    pub fn application(&self) -> &str {
        &self.application
    }

    /// The store handle this session analyses.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// What the last [`AnalysisSession::refresh`] recomputed.
    pub fn last_stats(&self) -> SessionStats {
        self.stats
    }

    /// The model produced by the last successful refresh, as a shared
    /// snapshot — `None` before the first refresh. Cloning the returned
    /// `Arc` is a reference-count bump, so a serving layer can publish the
    /// snapshot to concurrent readers while the session keeps absorbing
    /// deltas: a later refresh swaps in a *new* `Arc` and never mutates a
    /// model that was already handed out.
    pub fn snapshot(&self) -> Option<Arc<SieveModel>> {
        self.last_model.clone()
    }

    /// Replaces the call graph (it grows while a simulation streams).
    /// Topology changes alter the comparison *plan*, never a cached
    /// verdict, so nothing is dirtied.
    pub fn set_call_graph(&mut self, call_graph: CallGraph) {
        self.call_graph = call_graph;
    }

    /// The call graph the session currently plans comparisons over. A
    /// durability snapshot persists this next to the frozen store, so a
    /// recovered session plans the same comparisons.
    pub fn call_graph(&self) -> &CallGraph {
        &self.call_graph
    }

    /// Marks the components with touched series in `delta` as dirty
    /// without recomputing anything; several deltas may be absorbed before
    /// one [`AnalysisSession::refresh`].
    pub fn apply_delta(&mut self, delta: &StoreDelta) {
        for id in &delta.touched {
            self.dirty.insert(id.component.clone());
        }
        self.last_epoch = self.last_epoch.max(delta.epoch);
    }

    /// Whether absorbed-but-not-yet-refreshed dirt is pending: `true`
    /// after [`AnalysisSession::apply_delta`] of a non-empty delta (or
    /// [`AnalysisSession::mark_all_dirty`]) until the next *successful*
    /// refresh — a failed refresh keeps its dirty set, so a caller polling
    /// this flag retries exactly the outstanding work. The serving layer's
    /// dirty sweep uses this to decide which tenants need a refresh.
    pub fn has_pending_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Marks every component of the store dirty (full recomputation at the
    /// next refresh). Cached clusterings and edge verdicts still short-cut
    /// work whose content fingerprints did not change.
    pub fn mark_all_dirty(&mut self) {
        let dirty = &mut self.dirty;
        self.store.for_each_component(|c| {
            dirty.insert(c.clone());
        });
    }

    /// Absorbs one delta and recomputes the model: the streaming
    /// counterpart of one full `Sieve::analyze` pass. The result is
    /// bit-identical to batch-analysing the store's current content,
    /// whatever sequence of deltas led here.
    ///
    /// The returned model is an owned deep copy (on top of the snapshot
    /// the session retains for [`AnalysisSession::snapshot`]); callers on
    /// a streaming hot path should prefer
    /// [`AnalysisSession::update_shared`], which hands out the retained
    /// `Arc` without cloning the model.
    ///
    /// # Errors
    ///
    /// Propagates clustering and causality errors, like the batch path.
    ///
    /// # Example
    ///
    /// ```
    /// use sieve_core::config::SieveConfig;
    /// use sieve_core::pipeline::Sieve;
    /// use sieve_core::session::AnalysisSession;
    /// use sieve_graph::CallGraph;
    /// use sieve_simulator::store::{MetricId, MetricStore};
    ///
    /// let store = MetricStore::new();
    /// for metric in ["requests", "latency"] {
    ///     let id = MetricId::new("web", metric);
    ///     for t in 0..60u64 {
    ///         store.record(&id, t * 500, ((t as f64) * 0.2).sin() * metric.len() as f64);
    ///     }
    /// }
    /// let config = SieveConfig::default().with_cluster_range(2, 2).with_parallelism(1);
    /// let mut session =
    ///     AnalysisSession::new("shop", store.clone(), CallGraph::new(), config.clone())?;
    /// store.drain_delta(); // the initial load; everything is already dirty
    /// session.refresh()?;
    ///
    /// // Stream one more epoch: touch a series, drain the delta, update.
    /// store.record(&MetricId::new("web", "requests"), 60 * 500, 1.0);
    /// let model = session.update(&store.drain_delta())?;
    ///
    /// // The incremental model matches a from-scratch batch analysis.
    /// let batch = Sieve::new(config).analyze("shop", &store, &CallGraph::new())?;
    /// assert_eq!(model, batch);
    /// assert_eq!(session.last_stats().components_prepared, 1);
    /// # Ok::<(), sieve_core::SieveError>(())
    /// ```
    pub fn update(&mut self, delta: &StoreDelta) -> Result<SieveModel> {
        self.update_shared(delta).map(|model| (*model).clone())
    }

    /// Like [`AnalysisSession::update`], but returns the model as a shared
    /// [`Arc`] snapshot (also retrievable later via
    /// [`AnalysisSession::snapshot`]) instead of a fresh clone — the form
    /// the multi-tenant serving layer publishes to readers.
    ///
    /// # Errors
    ///
    /// Propagates clustering and causality errors, like the batch path.
    pub fn update_shared(&mut self, delta: &StoreDelta) -> Result<Arc<SieveModel>> {
        self.apply_delta(delta);
        self.refresh_shared()
    }

    /// Recomputes everything currently dirty and assembles the model.
    ///
    /// # Errors
    ///
    /// Propagates clustering and causality errors, like the batch path.
    pub fn refresh(&mut self) -> Result<SieveModel> {
        self.refresh_shared().map(|model| (*model).clone())
    }

    /// Like [`AnalysisSession::refresh`], but returns the model as a shared
    /// [`Arc`] snapshot. On success the same snapshot becomes available via
    /// [`AnalysisSession::snapshot`]; on error the previous snapshot is left
    /// in place.
    ///
    /// # Errors
    ///
    /// Propagates clustering and causality errors, like the batch path.
    pub fn refresh_shared(&mut self) -> Result<Arc<SieveModel>> {
        // Components that appeared in the store without a delta being
        // applied (e.g. a session created over a pre-loaded store) are
        // picked up here, so a refresh never analyses a stale world.
        let (prepared, dirty) = (&self.prepared, &mut self.dirty);
        self.store.for_each_component(|c| {
            if !prepared.contains_key(c) {
                dirty.insert(c.clone());
            }
        });

        let mut stats = SessionStats {
            epoch: self.last_epoch,
            ..SessionStats::default()
        };

        // 1. Re-prepare the dirty components (in parallel, component order
        //    preserved by the executor).
        let dirty_components: Vec<Name> = std::mem::take(&mut self.dirty).into_iter().collect();
        stats.components_prepared = dirty_components.len();
        let freshly_prepared = prepare_components(&self.store, &dirty_components, &self.config);
        for (component, prepared) in dirty_components.iter().zip(freshly_prepared) {
            let series_fps: Vec<u64> = (0..prepared.len())
                .map(|i| fingerprint_f64s(prepared.series(i)))
                .collect();
            let clustering_key = prepared.names().iter().zip(&series_fps).fold(
                mix(self.config_fp, prepared.len() as u64),
                |acc, (name, &fp)| mix(mix_str(acc, name.as_str()), fp),
            );
            self.prepared.insert(
                component.clone(),
                PreparedEntry {
                    prepared,
                    series_fps,
                    clustering_key,
                },
            );
        }
        stats.components_total = self.prepared.len();

        // 2. Re-cluster every component whose cached clustering no longer
        //    matches its prepared content (again in parallel, order
        //    preserved). Scanning all prepared components instead of just
        //    the dirty list costs one key comparison per component and
        //    makes the step self-healing: if a previous refresh failed
        //    after re-preparing, the key mismatch is still visible here.
        let to_recluster: Vec<(&Name, &PreparedEntry)> = self
            .prepared
            .iter()
            .filter(|(component, pc)| {
                self.clustering_keys.get(*component) != Some(&pc.clustering_key)
            })
            .collect();
        stats.components_reclustered = to_recluster.len();
        let reclustered =
            match try_par_map_chunks(self.config.parallelism, &to_recluster, |(component, pc)| {
                reduce_component((*component).clone(), &pc.prepared, &self.config)
                    .map(|clustering| ((*component).clone(), pc.clustering_key, clustering))
            }) {
                Ok(reclustered) => reclustered,
                Err(e) => {
                    // Put the taken dirty set back so a failed refresh
                    // leaves the outstanding work observable
                    // ([`AnalysisSession::has_pending_dirty`]) and a retry
                    // redoes it. (Re-preparation is idempotent, and the
                    // re-cluster scan above is keyed by content, so the
                    // retry converges to the same state.)
                    self.dirty.extend(dirty_components);
                    return Err(e);
                }
            };
        for (component, key, clustering) in reclustered {
            self.clusterings.insert(component.clone(), clustering);
            self.clustering_keys.insert(component, key);
        }

        // 3. Re-test the comparisons with a changed endpoint; everything
        //    else is served from the edge cache.
        self.generation += 1;
        let generation = self.generation;
        let plan = comparison_plan(&self.call_graph, &self.clusterings);
        stats.comparisons_planned = plan.len();

        // (fingerprint, values) per prepared series, borrowed from the
        // columnar arenas — nothing on this path copies a sample.
        let mut lookup: HashMap<SeriesKey<'_>, (u64, &[f64])> = HashMap::new();
        for (component, pc) in &self.prepared {
            for ((name, values), &fp) in pc.prepared.iter().zip(&pc.series_fps) {
                lookup.insert((component.as_str(), name.as_str()), (fp, values));
            }
        }

        let mut per_comparison: Vec<Option<Vec<DependencyEdge>>> = vec![None; plan.len()];
        let mut keys: Vec<Option<EdgeKey>> = Vec::with_capacity(plan.len());
        let mut miss_indices: Vec<usize> = Vec::new();
        for (i, cmp) in plan.iter().enumerate() {
            let source = lookup.get(&(cmp.source_component.as_str(), cmp.source_metric.as_str()));
            let target = lookup.get(&(cmp.target_component.as_str(), cmp.target_metric.as_str()));
            match (source, target) {
                (Some(&(source_fp, _)), Some(&(target_fp, _))) => {
                    let key = EdgeKey::new(cmp, source_fp, target_fp, self.config_fp);
                    if let Some((stamp, edges)) = self.edge_cache.get_mut(&key) {
                        *stamp = generation;
                        per_comparison[i] = Some(edges.clone());
                        keys.push(None);
                    } else {
                        miss_indices.push(i);
                        keys.push(Some(key));
                    }
                }
                // A representative without a prepared series produces no
                // edges on the batch path either; nothing worth caching.
                _ => {
                    per_comparison[i] = Some(Vec::new());
                    keys.push(None);
                }
            }
        }

        stats.comparisons_tested = miss_indices.len();
        if !miss_indices.is_empty() {
            let miss_plan: Vec<Comparison> =
                miss_indices.iter().map(|&i| plan[i].clone()).collect();
            let values_lookup: HashMap<SeriesKey<'_>, &[f64]> = lookup
                .iter()
                .map(|(key, &(_, values))| (*key, values))
                .collect();
            let computed = candidate_edges_per_comparison(&miss_plan, &values_lookup, &self.config);
            for (&i, edges) in miss_indices.iter().zip(computed) {
                let key = keys[i].take().expect("miss indices carry their key");
                self.edge_cache.insert(key, (generation, edges.clone()));
                per_comparison[i] = Some(edges);
            }
        }

        let dependency_graph = assemble_graph(
            &self.clusterings,
            &self.call_graph,
            per_comparison.into_iter().flatten().flatten(),
        );

        // Prune cache entries no longer reachable from the plan so the
        // cache stays bounded even under churning representative sets.
        self.edge_cache.retain(|_, (stamp, _)| *stamp == generation);

        self.stats = stats;
        let model = Arc::new(SieveModel {
            application: self.application.clone(),
            clusterings: self.clusterings.clone(),
            dependency_graph,
        });
        self.last_model = Some(Arc::clone(&model));
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{load_application, Sieve};
    use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
    use sieve_simulator::engine::{SimConfig, Simulation};
    use sieve_simulator::metrics::{MetricBehavior, MetricSpec};
    use sieve_simulator::workload::Workload;

    /// Six components in a chain, three metrics each — enough structure
    /// for real clusters and Granger edges while staying fast.
    fn chain_app(components: usize) -> AppSpec {
        let name = |i: usize| format!("svc{i}");
        let mut app = AppSpec::new("chain", name(0));
        for i in 0..components {
            app.add_component(
                ComponentSpec::new(name(i))
                    .with_capacity(150.0 + 30.0 * i as f64)
                    .with_metric(MetricSpec::gauge(
                        format!("svc{i}_requests_per_second"),
                        MetricBehavior::load_proportional(1.0 + 0.2 * i as f64),
                    ))
                    .with_metric(MetricSpec::gauge(
                        format!("svc{i}_latency_ms"),
                        MetricBehavior::latency(10.0 + i as f64, 120.0),
                    ))
                    .with_metric(MetricSpec::gauge(
                        format!("svc{i}_threads_max"),
                        MetricBehavior::constant(64.0),
                    )),
            );
        }
        for i in 1..components {
            app.add_call(CallSpec::new(name(i - 1), name(i)).with_lag_ms(500));
        }
        app
    }

    fn fast_config() -> SieveConfig {
        SieveConfig::default()
            .with_cluster_range(2, 3)
            .with_parallelism(2)
    }

    #[test]
    fn streamed_session_matches_batch_analysis_bit_for_bit() {
        let app = chain_app(4);
        let config = SimConfig::new(31).with_duration_ms(90_000);
        let mut sim = Simulation::new(app, Workload::randomized(60.0, 3), config).unwrap();
        let mut session = AnalysisSession::new(
            "chain",
            sim.store().clone(),
            sim.call_graph(),
            fast_config(),
        )
        .unwrap();

        let mut streamed = None;
        loop {
            let (delta, executed) = sim.step_epoch(45);
            if executed == 0 {
                break;
            }
            session.set_call_graph(sim.call_graph());
            streamed = Some(session.update(&delta).unwrap());
        }
        let streamed = streamed.expect("at least one epoch ran");

        let batch = Sieve::new(fast_config())
            .analyze("chain", sim.store(), &sim.call_graph())
            .unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn update_recomputes_only_the_dirty_component() {
        let app = chain_app(6);
        let (store, graph) =
            load_application(&app, &Workload::randomized(70.0, 5), 13, 90_000, 500).unwrap();
        let mut session =
            AnalysisSession::new("chain", store.clone(), graph.clone(), fast_config()).unwrap();
        store.drain_delta();
        let full = session.refresh().unwrap();
        let full_stats = session.last_stats();
        assert_eq!(full_stats.components_prepared, 6);
        assert_eq!(full_stats.components_reclustered, 6);
        assert!(full_stats.comparisons_tested > 0);

        // Touch exactly one mid-chain component: one more tick for every
        // svc3 metric, so its prepared (truncated-to-common-length) view
        // really grows.
        for metric in [
            "svc3_requests_per_second",
            "svc3_latency_ms",
            "svc3_threads_max",
        ] {
            let id = sieve_simulator::store::MetricId::new("svc3", metric);
            let last = store.series(&id).unwrap().end_ms().unwrap();
            store.record(&id, last + 500, 42.0);
        }
        let delta = store.drain_delta();
        assert_eq!(delta.touched_components(), vec!["svc3"]);

        let updated = session.update(&delta).unwrap();
        let stats = session.last_stats();
        assert_eq!(stats.components_prepared, 1, "only svc3 is re-prepared");
        assert_eq!(stats.components_reclustered, 1, "only svc3 is re-clustered");
        assert!(
            stats.comparisons_tested < full_stats.comparisons_tested,
            "only comparisons touching svc3 are re-tested ({} of {})",
            stats.comparisons_tested,
            full_stats.comparisons_tested
        );
        assert_eq!(stats.epoch, delta.epoch);

        // And the shortcut changed nothing: batch analysis of the updated
        // store agrees bit for bit.
        let batch = Sieve::new(fast_config())
            .analyze("chain", &store, &graph)
            .unwrap();
        assert_eq!(updated, batch);

        // An empty delta re-tests nothing and returns the same model.
        let noop = session.update(&store.drain_delta()).unwrap();
        let noop_stats = session.last_stats();
        assert_eq!(noop_stats.components_prepared, 0);
        assert_eq!(noop_stats.comparisons_tested, 0);
        assert_eq!(noop, updated);
        assert_eq!(full.application, "chain");
    }

    #[test]
    fn appending_content_identical_epochs_skips_reclustering() {
        // Preparation truncates to the shortest series; if a touched
        // component's prepared content comes out unchanged, the clustering
        // key matches and the k sweep is skipped.
        let store = MetricStore::new();
        let graph = CallGraph::new();
        for m in ["a", "b"] {
            let id = sieve_simulator::store::MetricId::new("web", m);
            for t in 0..100u64 {
                store.record(
                    &id,
                    t * 500,
                    (t as f64 * 0.3).sin() * (m.len() as f64 + 1.0),
                );
            }
        }
        // A deliberately short third series pins the common length.
        let short = sieve_simulator::store::MetricId::new("web", "short");
        for t in 0..50u64 {
            store.record(&short, t * 500, t as f64);
        }
        let mut session = AnalysisSession::new("app", store.clone(), graph, fast_config()).unwrap();
        store.drain_delta();
        session.refresh().unwrap();
        assert_eq!(session.last_stats().components_reclustered, 1);

        // Extending only the already-longer series does not change the
        // truncated prepared content.
        let id = sieve_simulator::store::MetricId::new("web", "a");
        store.record(&id, 100 * 500, 1.0);
        let delta = store.drain_delta();
        session.update(&delta).unwrap();
        let stats = session.last_stats();
        assert_eq!(stats.components_prepared, 1, "web is re-prepared");
        assert_eq!(
            stats.components_reclustered, 0,
            "identical prepared content keeps the cached clustering"
        );
    }

    #[test]
    fn snapshot_tracks_the_last_refreshed_model() {
        let app = chain_app(3);
        let (store, graph) =
            load_application(&app, &Workload::randomized(50.0, 2), 7, 60_000, 500).unwrap();
        let mut session =
            AnalysisSession::new("chain", store.clone(), graph, fast_config()).unwrap();
        assert!(session.snapshot().is_none(), "no model before a refresh");

        let first = session.refresh_shared().unwrap();
        let snap = session.snapshot().unwrap();
        assert!(Arc::ptr_eq(&first, &snap), "snapshot is the same Arc");

        // A refresh swaps in a new Arc; the old snapshot stays readable and
        // unchanged (readers never observe mutation).
        for metric in ["svc1_requests_per_second", "svc1_latency_ms"] {
            let id = sieve_simulator::store::MetricId::new("svc1", metric);
            let last = store.series(&id).unwrap().end_ms().unwrap();
            store.record(&id, last + 500, 7.0);
        }
        let second = session.update_shared(&store.drain_delta()).unwrap();
        assert!(!Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&second, &session.snapshot().unwrap()));
        assert_eq!(*first, *snap);
    }

    #[test]
    fn rehydrated_session_reproduces_the_frozen_model_bitwise() {
        let app = chain_app(3);
        let (store, graph) =
            load_application(&app, &Workload::randomized(50.0, 4), 11, 60_000, 500).unwrap();
        let mut live =
            AnalysisSession::new("chain", store.clone(), graph.clone(), fast_config()).unwrap();
        let live_model = live.update_shared(&store.drain_delta()).unwrap();

        // Freeze the store, revive it, and rehydrate a fresh session over
        // it — the recovery boot path.
        let revived = sieve_simulator::store::MetricStore::restore(store.freeze());
        let mut recovered = AnalysisSession::rehydrated(
            "chain",
            revived.clone(),
            live.call_graph().clone(),
            fast_config(),
        )
        .unwrap();
        assert_eq!(
            recovered.store().epoch(),
            store.epoch(),
            "the watermark survives the freeze"
        );
        let recovered_model = recovered.refresh_shared().unwrap();
        assert_eq!(*recovered_model, *live_model);
        assert_eq!(recovered.last_stats().epoch, live.last_stats().epoch);

        // Both sides keep converging identically once ingest resumes.
        for session_store in [&store, &revived] {
            let id = sieve_simulator::store::MetricId::new("svc1", "svc1_latency_ms");
            let last = session_store.series(&id).unwrap().end_ms().unwrap();
            session_store.record(&id, last + 500, 99.0);
        }
        let next_live = live.update_shared(&store.drain_delta()).unwrap();
        let next_recovered = recovered.update_shared(&revived.drain_delta()).unwrap();
        assert_eq!(*next_recovered, *next_live);
    }

    #[test]
    fn session_rejects_invalid_configuration() {
        let result = AnalysisSession::new(
            "x",
            MetricStore::new(),
            CallGraph::new(),
            SieveConfig::default().with_interval_ms(0),
        );
        assert!(matches!(
            result,
            Err(crate::SieveError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn config_fingerprint_tracks_result_affecting_fields_only() {
        let base = config_fingerprint(&SieveConfig::default());
        assert_eq!(base, config_fingerprint(&SieveConfig::default()));
        assert_ne!(
            base,
            config_fingerprint(&SieveConfig::default().with_interval_ms(250))
        );
        assert_ne!(
            base,
            config_fingerprint(&SieveConfig::default().with_cluster_range(2, 5))
        );
        // Parallelism and engine toggles are result-invariant.
        assert_eq!(
            base,
            config_fingerprint(&SieveConfig::default().with_parallelism(8))
        );
        assert_eq!(
            base,
            config_fingerprint(
                &SieveConfig::default()
                    .with_sbd_cache(false)
                    .with_granger_cache(false)
            )
        );
    }
}
