//! Pipeline configuration.

use sieve_causality::granger::GrangerConfig;

pub use sieve_simulator::store::RetentionPolicy;

/// Configuration of the Sieve pipeline, defaulting to the values used in the
/// paper.
#[derive(Debug, Clone, PartialEq)]
pub struct SieveConfig {
    /// Discretisation interval for all metric time series (500 ms in §3.2).
    pub interval_ms: u64,
    /// Variance threshold below which a metric is considered unvarying and
    /// dropped before clustering (0.002 in §3.2). Applied to the
    /// scale-free *relative* variance `var / (mean² + var)`, not the raw
    /// variance — see [`crate::reduce`] for why.
    pub variance_threshold: f64,
    /// Smallest number of clusters tried per component.
    pub min_clusters: usize,
    /// Largest number of clusters tried per component ("seven clusters per
    /// component was sufficient", §3.2).
    pub max_clusters: usize,
    /// Maximum k-Shape iterations per clustering attempt.
    pub kshape_max_iterations: usize,
    /// Granger-causality test configuration (0.05 significance, ADF-based
    /// differencing).
    pub granger: GrangerConfig,
    /// Number of worker threads used by every parallel stage of one
    /// analysis: per-component series preparation, per-component
    /// clustering and per-comparison causality testing (1 runs them all
    /// serially). An explicit setting is honoured exactly by the executor;
    /// the default adapts to the hardware
    /// ([`sieve_exec::par::hardware_parallelism`], cgroup-quota aware, so
    /// a single-core container defaults to serial). Never affects results:
    /// all stages run through the input-order-preserving
    /// [`sieve_exec::par_map_chunks`], so `parallelism = 1` and
    /// `parallelism = N` emit bit-identical models. (The multi-tenant
    /// serving layer's *cross-tenant* sweep fan-out is a separate knob,
    /// `ServeConfig::sweep_parallelism` in `sieve-serve`.)
    pub parallelism: usize,
    /// Whether the metric-reduction step runs on the shared SBD engine
    /// (cached per-series spectra plus a per-component pairwise distance
    /// matrix reused across the whole k sweep) instead of recomputing every
    /// shape-based distance from scratch. Both paths produce bit-identical
    /// models; the naive path exists as the reference oracle for tests and
    /// benchmarks. Defaults to `true`.
    pub use_sbd_cache: bool,
    /// Whether the dependency-identification step runs on the shared
    /// causality engine (one prepared state per representative series —
    /// cached ADF verdict, lazily differenced buffer, memoized restricted
    /// AR fits — shared by every edge the series participates in) instead
    /// of redoing the per-series work for every pair and direction. Both
    /// paths produce bit-identical models; the naive path is the reference
    /// oracle for tests and benchmarks. Defaults to `true`.
    pub use_granger_cache: bool,
    /// How much raw history the metric store retains per series. Unbounded
    /// by default (the offline-experiment oracle mode); a bounded policy
    /// keeps each series' newest points in a fixed ring window and folds
    /// evicted points into 10x/100x mean/min/max aggregate tiers. Applied
    /// by [`crate::pipeline::Sieve::analyze_application`] when loading an
    /// application, and by the serving layer when creating tenant stores.
    /// Analysis results are unchanged as long as the analysis window fits
    /// inside retention — the pipeline only ever reads retained windows.
    pub retention: RetentionPolicy,
}

impl Default for SieveConfig {
    fn default() -> Self {
        Self {
            interval_ms: 500,
            variance_threshold: 0.002,
            min_clusters: 2,
            max_clusters: 7,
            kshape_max_iterations: 50,
            granger: GrangerConfig::default(),
            parallelism: sieve_exec::par::hardware_parallelism(),
            use_sbd_cache: true,
            use_granger_cache: true,
            retention: RetentionPolicy::unbounded(),
        }
    }
}

impl SieveConfig {
    /// Builder-style setter for the discretisation interval.
    pub fn with_interval_ms(mut self, interval_ms: u64) -> Self {
        self.interval_ms = interval_ms;
        self
    }

    /// Builder-style setter for the cluster-count range.
    pub fn with_cluster_range(mut self, min_clusters: usize, max_clusters: usize) -> Self {
        self.min_clusters = min_clusters;
        self.max_clusters = max_clusters;
        self
    }

    /// Builder-style setter for the parallelism degree.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style setter for the SBD-engine toggle (`false` selects the
    /// naive direct-SBD reference path).
    pub fn with_sbd_cache(mut self, use_sbd_cache: bool) -> Self {
        self.use_sbd_cache = use_sbd_cache;
        self
    }

    /// Builder-style setter for the causality-engine toggle (`false`
    /// selects the naive per-pair Granger reference path).
    pub fn with_granger_cache(mut self, use_granger_cache: bool) -> Self {
        self.use_granger_cache = use_granger_cache;
        self
    }

    /// Builder-style setter for the store retention policy.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SieveError::InvalidConfig`] when the interval is
    /// zero, the cluster range is empty, or the variance threshold is
    /// negative.
    pub fn validate(&self) -> crate::Result<()> {
        if self.interval_ms == 0 {
            return Err(crate::SieveError::InvalidConfig {
                reason: "interval_ms must be positive".into(),
            });
        }
        if self.min_clusters == 0 || self.max_clusters < self.min_clusters {
            return Err(crate::SieveError::InvalidConfig {
                reason: format!(
                    "invalid cluster range {}..={}",
                    self.min_clusters, self.max_clusters
                ),
            });
        }
        if self.variance_threshold < 0.0 {
            return Err(crate::SieveError::InvalidConfig {
                reason: "variance_threshold must be non-negative".into(),
            });
        }
        if let Err(reason) = self.retention.validate() {
            return Err(crate::SieveError::InvalidConfig { reason });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SieveConfig::default();
        assert_eq!(c.interval_ms, 500);
        assert_eq!(c.variance_threshold, 0.002);
        assert_eq!(c.max_clusters, 7);
        assert_eq!(c.granger.significance, 0.05);
        assert!(c.use_sbd_cache, "cached distance engine is the default");
        assert!(
            c.use_granger_cache,
            "cached causality engine is the default"
        );
        assert!(
            !c.retention.is_bounded(),
            "unbounded retention is the default"
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn retention_builder_and_validation() {
        let c = SieveConfig::default().with_retention(RetentionPolicy::windowed(256));
        assert_eq!(c.retention.raw_capacity, Some(256));
        assert!(c.validate().is_ok());

        let bad = SieveConfig {
            retention: RetentionPolicy {
                raw_capacity: Some(0),
                tier_capacity: 8,
            },
            ..SieveConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad_tier = SieveConfig {
            retention: RetentionPolicy {
                raw_capacity: None,
                tier_capacity: 0,
            },
            ..SieveConfig::default()
        };
        assert!(bad_tier.validate().is_err());
    }

    #[test]
    fn builders_and_validation() {
        let c = SieveConfig::default()
            .with_interval_ms(1000)
            .with_cluster_range(3, 5)
            .with_parallelism(0);
        assert_eq!(c.interval_ms, 1000);
        assert_eq!(c.min_clusters, 3);
        assert_eq!(c.parallelism, 1);
        assert!(c.validate().is_ok());
        let naive = SieveConfig::default()
            .with_sbd_cache(false)
            .with_granger_cache(false);
        assert!(!naive.use_sbd_cache);
        assert!(!naive.use_granger_cache);

        assert!(SieveConfig::default()
            .with_interval_ms(0)
            .validate()
            .is_err());
        assert!(SieveConfig::default()
            .with_cluster_range(5, 2)
            .validate()
            .is_err());
        let bad = SieveConfig {
            variance_threshold: -1.0,
            ..SieveConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
