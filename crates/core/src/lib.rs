//! The Sieve pipeline: actionable insights from monitored metrics.
//!
//! This crate implements the paper's primary contribution — the three-step
//! pipeline of §3:
//!
//! 1. **Load the application** ([`pipeline::load_application`]): run the
//!    application under a workload, record every exported metric as a time
//!    series and capture the component call graph.
//! 2. **Reduce metrics** ([`reduce`]): per component, drop unvarying metrics
//!    (variance ≤ 0.002), interpolate and discretise the rest onto a 500 ms
//!    grid, cluster them with k-Shape (warm-started from metric-name
//!    similarity), choose the cluster count by silhouette score and keep one
//!    *representative metric* per cluster.
//! 3. **Identify dependencies** ([`dependencies`]): for every pair of
//!    communicating components, test each representative metric of the
//!    caller against each representative metric of the callee with Granger
//!    causality (plain and time-lagged), and keep the statistically
//!    significant directed edges, dropping bidirectional (likely spurious)
//!    relations.
//!
//! The result is a [`model::SieveModel`]: per-component clusterings plus a
//! metric dependency graph, which the autoscaling (`sieve-autoscale`) and
//! RCA (`sieve-rca`) engines consume.
//!
//! Steps 2 and 3 run inside an epoch-based incremental engine, the
//! [`session::AnalysisSession`]: long-lived per-series state absorbs store
//! deltas and recomputes only what a delta dirties, while
//! [`pipeline::Sieve::analyze`] is the batch special case (a fresh session
//! with everything dirty) — so streaming and batch share one code path and
//! emit bit-identical models.
//!
//! # Example
//!
//! ```no_run
//! use sieve_core::config::SieveConfig;
//! use sieve_core::pipeline::Sieve;
//! use sieve_apps::sharelatex;
//! use sieve_apps::MetricRichness;
//! use sieve_simulator::workload::Workload;
//!
//! let app = sharelatex::app_spec(MetricRichness::Minimal);
//! let sieve = Sieve::new(SieveConfig::default());
//! let model = sieve
//!     .analyze_application(&app, &Workload::randomized(60.0, 1), 0xFEED)
//!     .unwrap();
//! println!(
//!     "{} metrics reduced to {} representatives",
//!     model.total_metric_count(),
//!     model.total_representative_count()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod config;
pub mod dependencies;
pub mod model;
pub mod pipeline;
pub mod reduce;
pub mod session;

mod error;

pub use error::SieveError;

/// Convenient result alias for pipeline operations.
pub type Result<T> = std::result::Result<T, SieveError>;
