//! Case study 1: orchestration of autoscaling (§4.1 and §6.2 of the paper).
//!
//! Sieve's dependency graph tells the operator *which metric to scale on*:
//! the metric that appears most often in Granger-causality relations between
//! components (`http-requests_Project_id_GET_mean` for ShareLatex) instead
//! of the traditional CPU-usage trigger. This crate implements the three
//! ingredients of the case study:
//!
//! * [`rules`] — scaling rules (guiding metric, scale-in/out thresholds,
//!   ±1-instance actions) and their synthesis from a [`sieve_core::model::SieveModel`];
//! * [`calibrate`] — iterative threshold refinement against an SLA
//!   condition ("90% of all request latencies below 1000 ms") using a short
//!   peak-load sample, mirroring §4.1 step 3;
//! * [`engine`] — the runtime engine that streams metric values from the
//!   simulation (the reproduction's Kapacitor stand-in), applies the rule
//!   with a cooldown and records the quantities reported in Table 4: mean
//!   CPU usage per component, SLA violations and number of scaling actions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod engine;
pub mod rules;

pub use engine::{AutoscaleEngine, AutoscalingReport, ScalingAction};
pub use rules::{ScalingRule, SlaCondition};
