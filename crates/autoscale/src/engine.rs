//! The autoscaling runtime engine.
//!
//! The paper wires its scaling rules into Kapacitor, which streams metrics
//! out of InfluxDB and triggers the scale in/out actions. Here the engine
//! drives a [`Simulation`] tick by tick, polls the guiding metric from the
//! metric store, applies the [`ScalingRule`] (with a cooldown) and records
//! the quantities of Table 4: mean CPU usage per component, SLA violations
//! and the number of scaling actions.

use crate::rules::{ScalingRule, SlaCondition};
use sieve_simulator::app::AppSpec;
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::store::MetricId;
use sieve_simulator::workload::Workload;
use sieve_simulator::{Result, SimulatorError};
use std::collections::BTreeMap;

/// One executed scaling action, timestamped in ticks — the record a
/// scenario score checks burst reactions against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingAction {
    /// Tick at which the action executed (0-based).
    pub tick: usize,
    /// `+1` for scale-out, `-1` for scale-in.
    pub direction: i32,
    /// Total instances across the rule's target components after the
    /// action.
    pub total_target_instances: usize,
}

/// The outcome of one autoscaled run (one row-set of Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalingReport {
    /// The metric that drove the scaling decisions.
    pub guiding_metric: MetricId,
    /// Mean CPU usage per component over the whole run (percent).
    pub mean_cpu_usage_per_component: f64,
    /// Number of latency samples violating the SLA bound.
    pub sla_violations: usize,
    /// Total number of latency samples.
    pub total_samples: usize,
    /// Number of scaling actions executed.
    pub scaling_actions: usize,
    /// Every executed scaling action in tick order (`scaling_actions ==
    /// actions.len()` for engine-driven runs).
    pub actions: Vec<ScalingAction>,
    /// Instance count of every target component at the end of the run.
    pub final_instances: BTreeMap<String, usize>,
    /// The 90th-percentile end-to-end latency over the run, in milliseconds.
    pub latency_p90_ms: f64,
}

impl AutoscalingReport {
    /// Tick lag between `burst_start_tick` and the first scale-out action
    /// at or after it — `None` when the engine never reacted. This is the
    /// reaction-lag signal the chaos scenarios bound.
    pub fn scale_out_lag(&self, burst_start_tick: usize) -> Option<usize> {
        self.actions
            .iter()
            .find(|a| a.direction > 0 && a.tick >= burst_start_tick)
            .map(|a| a.tick - burst_start_tick)
    }

    /// Fraction of samples violating the SLA.
    pub fn violation_ratio(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        self.sla_violations as f64 / self.total_samples as f64
    }
}

/// Streams metrics from a running simulation and applies a scaling rule.
#[derive(Debug, Clone)]
pub struct AutoscaleEngine {
    rule: ScalingRule,
    sla: SlaCondition,
}

impl AutoscaleEngine {
    /// Creates an engine for the given rule and SLA condition.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::InvalidSpec`] when the rule is inconsistent
    /// (scale-in threshold not below scale-out, or no target components).
    pub fn new(rule: ScalingRule, sla: SlaCondition) -> Result<Self> {
        if !rule.is_consistent() {
            return Err(SimulatorError::InvalidSpec {
                reason: "inconsistent scaling rule".to_string(),
            });
        }
        Ok(Self { rule, sla })
    }

    /// The rule this engine applies.
    pub fn rule(&self) -> &ScalingRule {
        &self.rule
    }

    /// Runs `spec` under `workload` with autoscaling enabled and reports the
    /// Table 4 quantities.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (invalid spec, unknown components).
    pub fn run(
        &self,
        spec: &AppSpec,
        workload: &Workload,
        config: SimConfig,
    ) -> Result<AutoscalingReport> {
        let mut sim = Simulation::new(spec.clone(), workload.clone(), config)?;
        // Start every target component at the rule's minimum.
        for component in &self.rule.target_components {
            sim.set_instances(component, self.rule.min_instances)?;
        }

        let mut scaling_actions = 0usize;
        let mut actions: Vec<ScalingAction> = Vec::new();
        let mut sla_violations = 0usize;
        let mut total_samples = 0usize;
        let mut last_action_tick: Option<usize> = None;
        // Sliding window of "metric below the scale-in threshold" flags used
        // to make scale-in decisions sustained rather than instantaneous.
        let scale_in_window = self.rule.cooldown_ticks.max(1) * 12;
        let mut below_history: std::collections::VecDeque<bool> =
            std::collections::VecDeque::with_capacity(scale_in_window);

        while let Some(snapshot) = sim.step() {
            total_samples += 1;
            if self.sla.is_violated_by(snapshot.end_to_end_latency_ms) {
                sla_violations += 1;
            }

            let Some((_, value)) = sim.store().last_value(&self.rule.guiding_metric) else {
                continue;
            };
            let decision = self.rule.decide(value);
            // Scale-in decisions must be *sustained*: the guiding metric has
            // to stay below the scale-in threshold for (most of) an extended
            // window. Scaling out reacts immediately (after the cooldown) so
            // SLA violations are corrected as fast as possible; this
            // asymmetry is what keeps threshold rules from flapping and
            // corresponds to the iterative refinement of §4.1.
            below_history.push_back(decision < 0);
            if below_history.len() > scale_in_window {
                below_history.pop_front();
            }
            if decision < 0 {
                let below_count = below_history.iter().filter(|&&b| b).count();
                let sustained = below_history.len() >= scale_in_window
                    && below_count * 10 >= below_history.len() * 9;
                if !sustained {
                    continue;
                }
            }
            if decision == 0 {
                continue;
            }
            let cooled_down = match last_action_tick {
                None => true,
                Some(t) => snapshot.tick.saturating_sub(t) >= self.rule.cooldown_ticks,
            };
            if !cooled_down {
                continue;
            }

            let mut changed = false;
            for component in &self.rule.target_components {
                let current = sim.instances(component);
                let desired = if decision > 0 {
                    (current + 1).min(self.rule.max_instances)
                } else {
                    current.saturating_sub(1).max(self.rule.min_instances)
                };
                if desired != current {
                    sim.set_instances(component, desired)?;
                    changed = true;
                }
            }
            if changed {
                scaling_actions += 1;
                actions.push(ScalingAction {
                    tick: snapshot.tick,
                    direction: if decision > 0 { 1 } else { -1 },
                    total_target_instances: self
                        .rule
                        .target_components
                        .iter()
                        .map(|c| sim.instances(c))
                        .sum(),
                });
                last_action_tick = Some(snapshot.tick);
                below_history.clear();
            }
        }

        let mean_cpu = mean_cpu_usage_per_component(&sim);
        let latency_p90 =
            sieve_timeseries::stats::percentile(sim.latency_samples(), 90.0).unwrap_or(0.0);
        let final_instances = self
            .rule
            .target_components
            .iter()
            .map(|c| (c.clone(), sim.instances(c)))
            .collect();

        Ok(AutoscalingReport {
            guiding_metric: self.rule.guiding_metric.clone(),
            mean_cpu_usage_per_component: mean_cpu,
            sla_violations,
            total_samples,
            scaling_actions,
            actions,
            final_instances,
            latency_p90_ms: latency_p90,
        })
    }
}

/// Runs the application without any scaling rule (static deployment) and
/// reports the same quantities — the "do nothing" baseline.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_without_scaling(
    spec: &AppSpec,
    workload: &Workload,
    config: SimConfig,
    sla: &SlaCondition,
) -> Result<AutoscalingReport> {
    let mut sim = Simulation::new(spec.clone(), workload.clone(), config)?;
    let mut sla_violations = 0usize;
    let mut total_samples = 0usize;
    while let Some(snapshot) = sim.step() {
        total_samples += 1;
        if sla.is_violated_by(snapshot.end_to_end_latency_ms) {
            sla_violations += 1;
        }
    }
    Ok(AutoscalingReport {
        guiding_metric: MetricId::new("none", "none"),
        mean_cpu_usage_per_component: mean_cpu_usage_per_component(&sim),
        sla_violations,
        total_samples,
        scaling_actions: 0,
        actions: Vec::new(),
        final_instances: BTreeMap::new(),
        latency_p90_ms: sieve_timeseries::stats::percentile(sim.latency_samples(), 90.0)
            .unwrap_or(0.0),
    })
}

/// Mean of the `cpu_usage` metric across all components that export one.
///
/// Reads each series' *retained window* — the store visitor never exposes
/// evicted points. Under bounded retention this is the mean over the
/// newest `raw_capacity` samples (a deliberately recency-weighted
/// calibration signal); with retention off, or whenever the stream is
/// short enough to fit the window, it is bit-identical to the
/// full-history mean (pinned by
/// `mean_cpu_calibration_is_unchanged_by_ample_retention`).
fn mean_cpu_usage_per_component(sim: &Simulation) -> f64 {
    let store = sim.store();
    let mut component_means = Vec::new();
    // One pass over the store, no per-component id allocation and no
    // series copies — the visitor lends a zero-copy view of each series'
    // retained window.
    store.for_each_series_named("cpu_usage", |_, window| {
        if !window.is_empty() {
            component_means.push(sieve_timeseries::stats::mean(window.values()));
        }
    });
    if component_means.is_empty() {
        return 0.0;
    }
    sieve_timeseries::stats::mean(&component_means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrated_rule;
    use sieve_apps::sharelatex;
    use sieve_apps::MetricRichness;

    fn spike_workload() -> Workload {
        Workload::spike(20.0, 320.0, 60, 180)
    }

    fn sim_config() -> SimConfig {
        SimConfig::new(99).with_duration_ms(150_000)
    }

    fn scalable_components() -> Vec<String> {
        vec![
            "web".to_string(),
            "clsi".to_string(),
            "doc-updater".to_string(),
            "docstore".to_string(),
            "real-time".to_string(),
        ]
    }

    #[test]
    fn engine_rejects_inconsistent_rules() {
        let rule = ScalingRule::new(MetricId::new("web", "m"), 1.0, 2.0, vec!["web".into()]);
        assert!(AutoscaleEngine::new(rule, SlaCondition::default()).is_err());
    }

    #[test]
    fn autoscaling_scales_out_under_a_spike_and_reduces_violations() {
        let app = sharelatex::app_spec(MetricRichness::Minimal);
        let sla = SlaCondition::default();
        let metric = MetricId::new(sharelatex::GUIDING_COMPONENT, sharelatex::GUIDING_METRIC);
        let rule = calibrated_rule(&app, &metric, &sla, 320.0, scalable_components(), 5)
            .unwrap()
            .with_instance_bounds(1, 12)
            .with_cooldown_ticks(10);
        let engine = AutoscaleEngine::new(rule, sla).unwrap();

        let scaled = engine.run(&app, &spike_workload(), sim_config()).unwrap();
        let baseline = run_without_scaling(&app, &spike_workload(), sim_config(), &sla).unwrap();

        // The engine must scale out during the spike (scale-in may or may not
        // happen before the run ends, because scale-in decisions are
        // deliberately conservative).
        assert!(
            scaled.scaling_actions >= 1,
            "expected at least one scaling action, got {}",
            scaled.scaling_actions
        );
        assert!(
            scaled.sla_violations < baseline.sla_violations,
            "autoscaling should reduce SLA violations ({} vs baseline {})",
            scaled.sla_violations,
            baseline.sla_violations
        );
        assert_eq!(scaled.total_samples, baseline.total_samples);
        assert!(scaled.violation_ratio() <= 1.0);

        // The action log lines up with the counter and the spike timing:
        // the first scale-out comes at or after the spike start (tick 60)
        // and within a bounded reaction lag.
        assert_eq!(scaled.actions.len(), scaled.scaling_actions);
        assert!(scaled.actions.windows(2).all(|w| w[0].tick < w[1].tick));
        let lag = scaled.scale_out_lag(60).expect("reacted to the spike");
        assert!(lag <= 40, "reaction lag {lag} ticks");
        assert!(scaled.scale_out_lag(0).is_some());
        assert!(scaled.scale_out_lag(usize::MAX).is_none());
        assert_eq!(baseline.actions, Vec::new());
    }

    #[test]
    fn mean_cpu_calibration_is_unchanged_by_ample_retention() {
        use sieve_simulator::store::RetentionPolicy;
        let app = sharelatex::app_spec(MetricRichness::Minimal);
        let sla = SlaCondition::default();
        let workload = Workload::constant(10.0);
        // Short stream: 30 s at 500 ms ticks is 60 points per series, so a
        // 60-point ring window retains every point and the windowed run
        // must report the same calibration signal bit for bit.
        let config = SimConfig::new(7).with_duration_ms(30_000);
        let unbounded = run_without_scaling(&app, &workload, config, &sla).unwrap();
        let windowed = run_without_scaling(
            &app,
            &workload,
            config.with_retention(RetentionPolicy::windowed(60)),
            &sla,
        )
        .unwrap();
        assert_eq!(
            windowed.mean_cpu_usage_per_component,
            unbounded.mean_cpu_usage_per_component
        );
        assert_eq!(windowed.sla_violations, unbounded.sla_violations);
        assert_eq!(windowed.latency_p90_ms, unbounded.latency_p90_ms);
    }

    #[test]
    fn report_fields_are_consistent() {
        let app = sharelatex::app_spec(MetricRichness::Minimal);
        let sla = SlaCondition::default();
        let baseline =
            run_without_scaling(&app, &Workload::constant(10.0), sim_config(), &sla).unwrap();
        assert_eq!(baseline.scaling_actions, 0);
        assert!(baseline.sla_violations <= baseline.total_samples);
        assert!(baseline.mean_cpu_usage_per_component >= 0.0);
        assert!(baseline.latency_p90_ms > 0.0);
        assert_eq!(
            baseline.violation_ratio(),
            baseline.sla_violations as f64 / baseline.total_samples as f64
        );
    }
}
