//! Scaling rules and SLA conditions.

use sieve_core::model::SieveModel;
use sieve_simulator::store::MetricId;

/// A service-level agreement on end-to-end request latency, e.g. "90% of all
/// request latencies below 1000 ms" (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaCondition {
    /// The percentile of latencies the condition constrains (e.g. 90.0).
    pub percentile: f64,
    /// The latency bound in milliseconds.
    pub threshold_ms: f64,
}

impl Default for SlaCondition {
    fn default() -> Self {
        Self {
            percentile: 90.0,
            threshold_ms: 1000.0,
        }
    }
}

impl SlaCondition {
    /// Whether a single latency sample violates the bound.
    pub fn is_violated_by(&self, latency_ms: f64) -> bool {
        latency_ms > self.threshold_ms
    }

    /// Whether a window of latency samples violates the condition (its
    /// configured percentile exceeds the bound).
    pub fn is_violated_by_window(&self, latencies_ms: &[f64]) -> bool {
        match sieve_timeseries::stats::percentile(latencies_ms, self.percentile) {
            Some(p) => p > self.threshold_ms,
            None => false,
        }
    }
}

/// A threshold-based scaling rule on one guiding metric.
///
/// The rule scales each target component by ±1 instance when the guiding
/// metric crosses the scale-out/in thresholds, subject to instance bounds
/// and a cooldown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRule {
    /// The metric driving the decisions.
    pub guiding_metric: MetricId,
    /// Scale out (add an instance) when the metric exceeds this value.
    pub scale_out_threshold: f64,
    /// Scale in (remove an instance) when the metric falls below this value.
    pub scale_in_threshold: f64,
    /// Components whose instance counts the rule adjusts.
    pub target_components: Vec<String>,
    /// Minimum instances per target component.
    pub min_instances: usize,
    /// Maximum instances per target component.
    pub max_instances: usize,
    /// Ticks to wait between consecutive scaling actions.
    pub cooldown_ticks: usize,
}

impl ScalingRule {
    /// Creates a rule with sensible defaults (1–10 instances, 20-tick
    /// cooldown).
    pub fn new(
        guiding_metric: MetricId,
        scale_out_threshold: f64,
        scale_in_threshold: f64,
        target_components: Vec<String>,
    ) -> Self {
        Self {
            guiding_metric,
            scale_out_threshold,
            scale_in_threshold,
            target_components,
            min_instances: 1,
            max_instances: 10,
            cooldown_ticks: 20,
        }
    }

    /// Builder-style setter for the instance bounds.
    pub fn with_instance_bounds(mut self, min_instances: usize, max_instances: usize) -> Self {
        self.min_instances = min_instances.max(1);
        self.max_instances = max_instances.max(self.min_instances);
        self
    }

    /// Builder-style setter for the cooldown.
    pub fn with_cooldown_ticks(mut self, cooldown_ticks: usize) -> Self {
        self.cooldown_ticks = cooldown_ticks;
        self
    }

    /// The action the rule takes for a metric observation: `+1`, `-1` or `0`
    /// instances per target component.
    pub fn decide(&self, metric_value: f64) -> i32 {
        if metric_value > self.scale_out_threshold {
            1
        } else if metric_value < self.scale_in_threshold {
            -1
        } else {
            0
        }
    }

    /// Whether the thresholds are consistent (scale-in strictly below
    /// scale-out).
    pub fn is_consistent(&self) -> bool {
        self.scale_in_threshold < self.scale_out_threshold
            && !self.target_components.is_empty()
            && self.min_instances <= self.max_instances
    }
}

/// Selects the guiding metric from a Sieve model: the `(component, metric)`
/// pair that appears most often in the Granger-causality relations of the
/// dependency graph (§4.1, step 1). Returns `None` when the graph has no
/// edges.
pub fn select_guiding_metric(model: &SieveModel) -> Option<MetricId> {
    let metric = model.dependency_graph.most_connected_metric()?;
    // Find which component exports that metric (edge endpoints know it).
    for edge in model.dependency_graph.edges() {
        if edge.source_metric == metric {
            return Some(MetricId::new(edge.source_component.clone(), metric));
        }
        if edge.target_metric == metric {
            return Some(MetricId::new(edge.target_component.clone(), metric));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_graph::{DependencyEdge, DependencyGraph};

    #[test]
    fn sla_condition_checks_samples_and_windows() {
        let sla = SlaCondition::default();
        assert!(!sla.is_violated_by(900.0));
        assert!(sla.is_violated_by(1100.0));
        // 10 samples, one slow: p90 sits right at the boundary region.
        let mut window = vec![200.0; 9];
        window.push(5000.0);
        assert!(!SlaCondition {
            percentile: 50.0,
            threshold_ms: 1000.0
        }
        .is_violated_by_window(&window));
        assert!(SlaCondition {
            percentile: 99.0,
            threshold_ms: 1000.0
        }
        .is_violated_by_window(&window));
        assert!(!sla.is_violated_by_window(&[]));
    }

    #[test]
    fn rule_decisions_follow_thresholds() {
        let rule = ScalingRule::new(
            MetricId::new("web", "latency"),
            1400.0,
            1120.0,
            vec!["web".to_string()],
        );
        assert_eq!(rule.decide(1500.0), 1);
        assert_eq!(rule.decide(1000.0), -1);
        assert_eq!(rule.decide(1300.0), 0);
        assert!(rule.is_consistent());
    }

    #[test]
    fn inconsistent_rules_are_detected() {
        let rule = ScalingRule::new(MetricId::new("web", "m"), 10.0, 20.0, vec!["web".into()]);
        assert!(!rule.is_consistent());
        let rule = ScalingRule::new(MetricId::new("web", "m"), 20.0, 10.0, vec![]);
        assert!(!rule.is_consistent());
    }

    #[test]
    fn builders_clamp_bounds() {
        let rule = ScalingRule::new(MetricId::new("web", "m"), 2.0, 1.0, vec!["web".into()])
            .with_instance_bounds(0, 0)
            .with_cooldown_ticks(5);
        assert_eq!(rule.min_instances, 1);
        assert_eq!(rule.max_instances, 1);
        assert_eq!(rule.cooldown_ticks, 5);
    }

    #[test]
    fn guiding_metric_is_the_most_connected_one() {
        let mut graph = DependencyGraph::new();
        for (target, metric) in [
            ("mongodb", "queries"),
            ("redis", "ops"),
            ("clsi", "compiles"),
        ] {
            graph.add_edge(DependencyEdge {
                source_component: "web".into(),
                source_metric: "http_latency_mean".into(),
                target_component: target.into(),
                target_metric: metric.into(),
                p_value: 0.01,
                f_statistic: 10.0,
                lag_ms: 500,
            });
        }
        let model = SieveModel {
            application: "test".into(),
            clusterings: Default::default(),
            dependency_graph: graph,
        };
        let metric = select_guiding_metric(&model).unwrap();
        assert_eq!(metric, MetricId::new("web", "http_latency_mean"));
    }

    #[test]
    fn guiding_metric_is_none_for_an_empty_graph() {
        let model = SieveModel::default();
        assert!(select_guiding_metric(&model).is_none());
    }
}
