//! Threshold calibration against an SLA condition.
//!
//! §4.1 of the paper: "The scale in/out thresholds are defined from the
//! values of m according to a Service Level Agreement (SLA) condition. ...
//! The thresholds for m are iteratively refined during the application
//! loading phase." and §6.2: "To calculate the threshold values to trigger
//! autoscaling, we used a 5-minute sample from the peak load of our HTTP
//! trace and iteratively refined the values to stay within the SLA
//! condition."
//!
//! The calibration below replays a short ramp up to the expected peak load,
//! records the guiding metric alongside the end-to-end latency, and derives
//! the scale-out threshold from the metric value at which the latency first
//! approaches the SLA bound (and the scale-in threshold from the value at
//! which latency is comfortably below it).

use crate::rules::{ScalingRule, SlaCondition};
use sieve_simulator::app::AppSpec;
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::store::MetricId;
use sieve_simulator::workload::Workload;
use sieve_simulator::{Result, SimulatorError};

/// Duration of the calibration sample (5 minutes, as in §6.2).
pub const CALIBRATION_DURATION_MS: u64 = 300_000;

/// Calibrated thresholds for one guiding metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedThresholds {
    /// Scale out above this metric value.
    pub scale_out: f64,
    /// Scale in below this metric value.
    pub scale_in: f64,
    /// The largest metric value observed during calibration.
    pub observed_max: f64,
}

/// Calibrates scale-in/out thresholds for `metric` so that the application
/// stays within `sla` under loads up to `peak_rate`.
///
/// # Errors
///
/// * [`SimulatorError::UnknownComponent`] / [`SimulatorError::InvalidSpec`]
///   when the spec is invalid or the metric does not exist.
pub fn calibrate_thresholds(
    spec: &AppSpec,
    metric: &MetricId,
    sla: &SlaCondition,
    peak_rate: f64,
    seed: u64,
) -> Result<CalibratedThresholds> {
    let component_exists = spec.component(&metric.component).is_some();
    if !component_exists {
        return Err(SimulatorError::UnknownComponent {
            name: metric.component.to_string(),
        });
    }
    let metric_exists = spec
        .component(&metric.component)
        .map(|c| c.metrics.iter().any(|m| m.name == metric.metric))
        .unwrap_or(false);
    if !metric_exists {
        return Err(SimulatorError::InvalidSpec {
            reason: format!("metric `{}` not found for calibration", metric),
        });
    }

    // Ramp from idle to 1.2x the expected peak over the calibration window.
    let workload = Workload::ramp(0.0, peak_rate * 1.2);
    let config = SimConfig::new(seed).with_duration_ms(CALIBRATION_DURATION_MS);
    let mut sim = Simulation::new(spec.clone(), workload, config)?;

    let mut pairs: Vec<(f64, f64)> = Vec::new(); // (metric value, latency)
    while let Some(snapshot) = sim.step() {
        if let Some((_, value)) = sim.store().last_value(metric) {
            pairs.push((value, snapshot.end_to_end_latency_ms));
        }
    }
    if pairs.is_empty() {
        return Err(SimulatorError::InvalidSpec {
            reason: "calibration run produced no samples".to_string(),
        });
    }

    let observed_max = pairs
        .iter()
        .map(|(v, _)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let observed_min = pairs.iter().map(|(v, _)| *v).fold(f64::INFINITY, f64::min);

    // Both thresholds are anchored on *latency* levels and translated into
    // guiding-metric values through the calibration run, so that rules on
    // different metrics (CPU, request latency, queue depth, ...) trigger at
    // comparable operating points:
    //   * scale out at the metric value where the end-to-end latency first
    //     reaches the warning level (75% of the SLA bound);
    //   * scale in at the metric value below which latency stays comfortable
    //     (30% of the SLA bound).
    let warning_ms = 0.75 * sla.threshold_ms;
    let comfortable_ms = 0.30 * sla.threshold_ms;
    let scale_out_anchor = pairs
        .iter()
        .filter(|(_, lat)| *lat >= warning_ms)
        .map(|(v, _)| *v)
        .fold(f64::INFINITY, f64::min);
    let comfortable_value = pairs
        .iter()
        .filter(|(_, lat)| *lat < comfortable_ms)
        .map(|(v, _)| *v)
        .fold(f64::NEG_INFINITY, f64::max);

    let scale_out = if scale_out_anchor.is_finite() {
        scale_out_anchor
    } else {
        // The SLA was never at risk during calibration: scale out only near
        // the top of the observed range.
        observed_min + 0.9 * (observed_max - observed_min)
    };
    let mut scale_in = if comfortable_value.is_finite() {
        comfortable_value
    } else {
        observed_min + 0.4 * (scale_out - observed_min)
    };
    if scale_in >= scale_out {
        scale_in = observed_min + 0.7 * (scale_out - observed_min);
    }

    Ok(CalibratedThresholds {
        scale_out,
        scale_in,
        observed_max,
    })
}

/// Convenience: builds a complete [`ScalingRule`] for `metric` with
/// calibrated thresholds.
///
/// # Errors
///
/// Same as [`calibrate_thresholds`].
pub fn calibrated_rule(
    spec: &AppSpec,
    metric: &MetricId,
    sla: &SlaCondition,
    peak_rate: f64,
    target_components: Vec<String>,
    seed: u64,
) -> Result<ScalingRule> {
    let thresholds = calibrate_thresholds(spec, metric, sla, peak_rate, seed)?;
    Ok(ScalingRule::new(
        metric.clone(),
        thresholds.scale_out,
        thresholds.scale_in,
        target_components,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::app::{CallSpec, ComponentSpec};
    use sieve_simulator::metrics::{MetricBehavior, MetricSpec};

    fn app() -> AppSpec {
        let mut app = AppSpec::new("cal", "front");
        app.add_component(
            ComponentSpec::new("front")
                .with_capacity(80.0)
                .with_metric(MetricSpec::gauge(
                    "front_latency_ms",
                    MetricBehavior::latency(300.0, 70.0),
                ))
                .with_metric(MetricSpec::gauge(
                    "front_cpu",
                    MetricBehavior::cpu_like(1.0),
                )),
        );
        app.add_component(ComponentSpec::new("db").with_capacity(150.0).with_metric(
            MetricSpec::gauge("db_queries", MetricBehavior::load_proportional(2.0)),
        ));
        app.add_call(CallSpec::new("front", "db"));
        app
    }

    #[test]
    fn calibration_produces_consistent_thresholds() {
        let sla = SlaCondition::default();
        let metric = MetricId::new("front", "front_latency_ms");
        let t = calibrate_thresholds(&app(), &metric, &sla, 300.0, 7).unwrap();
        assert!(t.scale_in < t.scale_out, "{t:?}");
        assert!(t.scale_out <= t.observed_max);
        assert!(
            t.scale_out > 300.0,
            "threshold should be above the idle latency"
        );
    }

    #[test]
    fn calibrated_rule_is_consistent() {
        let sla = SlaCondition::default();
        let metric = MetricId::new("front", "front_cpu");
        let rule = calibrated_rule(&app(), &metric, &sla, 300.0, vec!["front".into()], 7).unwrap();
        assert!(rule.is_consistent());
    }

    #[test]
    fn low_peak_load_still_yields_thresholds() {
        // The SLA is never at risk: the fallback branch is used.
        let sla = SlaCondition::default();
        let metric = MetricId::new("front", "front_latency_ms");
        let t = calibrate_thresholds(&app(), &metric, &sla, 5.0, 7).unwrap();
        assert!(t.scale_in < t.scale_out);
    }

    #[test]
    fn unknown_metric_or_component_is_rejected() {
        let sla = SlaCondition::default();
        assert!(calibrate_thresholds(&app(), &MetricId::new("nope", "m"), &sla, 10.0, 1).is_err());
        assert!(
            calibrate_thresholds(&app(), &MetricId::new("front", "missing"), &sla, 10.0, 1)
                .is_err()
        );
    }
}
