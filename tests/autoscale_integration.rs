//! Cross-crate integration test: the autoscaling case study wiring
//! (Sieve model -> guiding metric -> calibrated rule -> scaling engine).

use sieve::autoscale::calibrate::{calibrate_thresholds, calibrated_rule};
use sieve::autoscale::engine::{run_without_scaling, AutoscaleEngine};
use sieve::autoscale::rules::{select_guiding_metric, SlaCondition};
use sieve::core::config::SieveConfig;
use sieve::core::pipeline::Sieve;
use sieve::prelude::*;
use sieve_apps::sharelatex;

fn scalable_components() -> Vec<String> {
    [
        "web",
        "real-time",
        "chat",
        "clsi",
        "contacts",
        "doc-updater",
        "docstore",
        "filestore",
        "spelling",
        "tags",
        "track-changes",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn guiding_metric_selection_comes_from_the_dependency_graph() {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let model = Sieve::new(SieveConfig::default().with_cluster_range(2, 5))
        .analyze_application_for(&app, &Workload::randomized(90.0, 8), 0x5CA1E, 120_000)
        .unwrap();
    let guiding = select_guiding_metric(&model).expect("a guiding metric is selected");
    // The selected metric belongs to a component of the application and is
    // one of that component's exported metrics.
    let component = app
        .component(&guiding.component)
        .unwrap_or_else(|| panic!("unknown component {}", guiding.component));
    assert!(
        component.metrics.iter().any(|m| m.name == guiding.metric),
        "guiding metric {guiding} is not exported by its component"
    );
    // It is the metric that appears most often in dependency relations.
    let counts = model.dependency_graph.metric_appearance_counts();
    assert_eq!(counts.first().map(|(m, _)| m.clone()), Some(guiding.metric));
}

#[test]
fn calibrated_autoscaling_keeps_the_sla_under_a_spiky_trace() {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let sla = SlaCondition::default();
    let guiding = MetricId::new(sharelatex::GUIDING_COMPONENT, sharelatex::GUIDING_METRIC);

    let thresholds = calibrate_thresholds(&app, &guiding, &sla, 320.0, 3).unwrap();
    assert!(thresholds.scale_in < thresholds.scale_out);

    let rule = calibrated_rule(&app, &guiding, &sla, 320.0, scalable_components(), 3)
        .unwrap()
        .with_instance_bounds(1, 12)
        .with_cooldown_ticks(10);
    let engine = AutoscaleEngine::new(rule, sla).unwrap();

    // A 10-minute WorldCup-like slice with a strong spike.
    let workload = Workload::worldcup_like(1200, 320.0, 1998);
    let config = SimConfig::new(0x51).with_duration_ms(600_000);

    let scaled = engine.run(&app, &workload, config).unwrap();
    let unscaled = run_without_scaling(&app, &workload, config, &sla).unwrap();

    assert_eq!(scaled.total_samples, unscaled.total_samples);
    assert!(scaled.scaling_actions > 0, "the engine never scaled");
    assert!(
        scaled.sla_violations < unscaled.sla_violations,
        "autoscaling did not reduce SLA violations: {} vs {}",
        scaled.sla_violations,
        unscaled.sla_violations
    );
    assert!(
        scaled.violation_ratio() < 0.35,
        "too many SLA violations even with autoscaling: {:.2}",
        scaled.violation_ratio()
    );
}
