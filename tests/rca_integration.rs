//! Cross-crate integration test: the OpenStack RCA case study end to end
//! (§6.3 of the paper, Launchpad bug #1533942).

use sieve::core::config::SieveConfig;
use sieve::core::pipeline::Sieve;
use sieve::prelude::*;
use sieve::rca::{RcaConfig, RcaEngine};
use sieve_apps::openstack;

fn analyze(app: &AppSpec, seed: u64) -> SieveModel {
    let config = SieveConfig::default()
        .with_cluster_range(2, 5)
        .with_parallelism(4);
    Sieve::new(config)
        .analyze_application_for(app, &Workload::randomized(60.0, 5), seed, 120_000)
        .expect("analysis succeeds")
}

#[test]
fn rca_ranks_the_faulty_components_and_isolates_the_root_cause_edge_metrics() {
    let correct_app = openstack::app_spec(MetricRichness::Minimal);
    let faulty_app = openstack::faulty_app_spec(MetricRichness::Minimal);

    let correct = analyze(&correct_app, 0xBEEF);
    let faulty = analyze(&faulty_app, 0xBEEF);

    // The fault changes the dependency structure (the paper observed 647 vs
    // 343 edges; the direction of the change matters, not the magnitude).
    assert_ne!(
        correct.dependency_graph.edge_count(),
        faulty.dependency_graph.edge_count()
    );

    let report = RcaEngine::new(RcaConfig::default()).compare(&correct, &faulty);

    // Step 1-2: the components known to be affected by the bug carry novel
    // metrics and are ranked above the unaffected ones.
    let novelty_of = |component: &str| -> usize {
        report
            .component_rankings
            .iter()
            .find(|r| r.component == component)
            .map(|r| r.novelty_score)
            .unwrap_or(0)
    };
    assert!(novelty_of("nova-api") > 0, "nova-api shows no novelty");
    assert!(
        novelty_of("neutron-server") > 0,
        "neutron-server shows no novelty"
    );
    assert!(
        novelty_of("nova-api") >= novelty_of("memcached"),
        "an unaffected component outranks nova-api"
    );

    // The affected components appear in the top half of the step-2 ranking.
    let position = |component: &str| -> usize {
        report
            .component_rankings
            .iter()
            .position(|r| r.component == component)
            .unwrap_or(usize::MAX)
    };
    assert!(
        position("nova-api") < 8,
        "nova-api ranked too low: {}",
        position("nova-api")
    );
    assert!(
        position("neutron-server") < 8,
        "neutron-server ranked too low: {}",
        position("neutron-server")
    );

    // Step 3: some clusters are novel, but far from all of them.
    assert!(report.cluster_novelty.novel() > 0);
    assert!(report.cluster_novelty.novel() < report.cluster_novelty.total);

    // Step 4: the dependency-graph diff is non-trivial.
    let e = &report.edge_novelty;
    assert!(
        e.new + e.discarded + e.lag_changed > 0,
        "no edge differences detected"
    );

    // Step 5: the final ranking exists, is ordered and implicates the
    // ground-truth metrics of the bug (ERROR instances / DOWN ports).
    assert!(!report.final_ranking.is_empty());
    for pair in report.final_ranking.windows(2) {
        assert!(pair[0].novelty_score >= pair[1].novelty_score);
        assert!(pair[0].rank < pair[1].rank);
    }
    assert!(
        report.implicates_metric("nova-api", openstack::ERROR_METRIC)
            || report.implicates_metric("neutron-server", openstack::ROOT_CAUSE_METRIC),
        "neither ground-truth metric was implicated; ranking: {:#?}",
        report.final_ranking
    );

    // The final scope is a genuine reduction of the search space.
    let total_metrics: usize = faulty.clusterings.values().map(|c| c.total_metrics).sum();
    let (components, _clusters, metrics) = report.surviving_scope;
    assert!(components <= 16);
    assert!(
        metrics < total_metrics,
        "RCA did not reduce the state to inspect ({metrics} vs {total_metrics})"
    );
}

#[test]
fn comparing_a_version_with_itself_reports_no_anomaly() {
    let app = openstack::app_spec(MetricRichness::Minimal);
    let model = analyze(&app, 0x1234);
    let report = RcaEngine::new(RcaConfig::default()).compare(&model, &model.clone());
    assert!(report.final_ranking.is_empty());
    assert_eq!(report.cluster_novelty.novel(), 0);
    assert_eq!(report.edge_novelty.new, 0);
    assert_eq!(report.edge_novelty.discarded, 0);
}
