//! Cross-crate integration tests: the full Sieve pipeline on the ShareLatex
//! application model (steps 1–3 of the paper).

use sieve::core::config::SieveConfig;
use sieve::core::pipeline::{load_application, Sieve};
use sieve::prelude::*;
use sieve_apps::sharelatex;

fn fast_config() -> SieveConfig {
    SieveConfig::default()
        .with_cluster_range(2, 5)
        .with_parallelism(4)
}

fn analyzed_model(seed: u64, workload_seed: u64) -> SieveModel {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    Sieve::new(fast_config())
        .analyze_application_for(
            &app,
            &Workload::randomized(90.0, workload_seed),
            seed,
            120_000,
        )
        .expect("pipeline run succeeds")
}

#[test]
fn loading_records_all_metrics_and_the_call_graph() {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(60.0, 2), 7, 90_000, 500).unwrap();
    // Every exported metric is recorded as a time series.
    assert_eq!(store.series_count(), app.total_metric_count());
    // The observed call graph matches the modelled topology.
    assert_eq!(call_graph.component_count(), 15);
    assert!(call_graph.has_edge("haproxy", "web"));
    assert!(call_graph.has_edge("web", "mongodb"));
    assert!(call_graph.has_edge("doc-updater", "redis"));
    assert!(!call_graph.has_edge("mongodb", "web"));
}

#[test]
fn pipeline_reduces_metrics_by_a_large_factor() {
    let model = analyzed_model(0xAB, 3);
    // Every component got a clustering.
    assert_eq!(model.clusterings.len(), 15);
    // The reduction is at least ~2.5x even on the minimal model (the paper
    // reports 10-100x on the full 889-metric deployment, which the
    // full-richness benches reproduce).
    assert!(
        model.overall_reduction_factor() >= 2.5,
        "reduction factor {:.2}",
        model.overall_reduction_factor()
    );
    // No component keeps more representatives than metrics.
    for clustering in model.clusterings.values() {
        assert!(clustering.clusters.len() <= clustering.total_metrics);
        // Representatives are members of their clusters.
        for cluster in &clustering.clusters {
            assert!(cluster.contains(&cluster.representative));
        }
    }
    // Constant metrics (e.g. num_cpus) never survive the variance filter.
    let web = model.clustering_of("web").expect("web clustering");
    assert!(web
        .clusters
        .iter()
        .all(|c| !c.contains("num_cpus") && !c.contains("open_file_limit")));
}

#[test]
fn dependency_graph_follows_the_call_topology() {
    let model = analyzed_model(0xCD, 5);
    let graph = &model.dependency_graph;
    assert!(graph.edge_count() > 0, "dependency graph is empty");
    // Edges only connect components that actually communicate.
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let calls: Vec<(String, String)> = app
        .calls()
        .iter()
        .map(|c| (c.caller.clone(), c.callee.clone()))
        .collect();
    for edge in graph.edges() {
        let pair_communicates = calls.iter().any(|(a, b)| {
            (a == &edge.source_component && b == &edge.target_component)
                || (a == &edge.target_component && b == &edge.source_component)
        });
        assert!(
            pair_communicates,
            "edge between non-communicating components: {} -> {}",
            edge.source_component, edge.target_component
        );
        // Detected lags are small multiples of the 500 ms interval.
        assert!(edge.lag_ms >= 500 && edge.lag_ms <= 5 * 500);
        assert!(edge.p_value < 0.05);
    }
    // The front of the application is connected to the web tier.
    assert!(
        graph.has_component_edge("haproxy", "web") || graph.has_component_edge("web", "haproxy"),
        "no dependency between haproxy and web"
    );
}

#[test]
fn clustering_is_consistent_across_independent_runs() {
    // Two runs with different workload seeds and measurement seeds — the
    // cluster assignments should still agree well above chance (Figure 3 of
    // the paper; its reported average AMI is 0.597).
    use sieve::cluster::ami::adjusted_mutual_information;

    let run_a = analyzed_model(0x01, 10);
    let run_b = analyzed_model(0x02, 20);

    let mut amis = Vec::new();
    for (component, clustering_a) in &run_a.clusterings {
        let Some(clustering_b) = run_b.clustering_of(component) else {
            continue;
        };
        // Build label vectors over the metrics clustered in both runs.
        let metrics_a = clustering_a.clustered_metrics();
        let mut labels_a = Vec::new();
        let mut labels_b = Vec::new();
        for (idx_a, metric) in metrics_a.iter().enumerate() {
            let cluster_a = clustering_a
                .clusters
                .iter()
                .position(|c| c.contains(metric))
                .unwrap_or(idx_a);
            if let Some(cluster_b) = clustering_b
                .clusters
                .iter()
                .position(|c| c.contains(metric))
            {
                labels_a.push(cluster_a);
                labels_b.push(cluster_b);
            }
        }
        if labels_a.len() >= 4 {
            amis.push(adjusted_mutual_information(&labels_a, &labels_b).unwrap());
        }
    }
    assert!(!amis.is_empty(), "no comparable components");
    let mean_ami: f64 = amis.iter().sum::<f64>() / amis.len() as f64;
    assert!(
        mean_ami > 0.3,
        "mean AMI across components too low: {mean_ami:.3} ({amis:?})"
    );
}

#[test]
fn distance_matrix_backed_clustering_equals_direct_sbd_on_a_full_model() {
    // Regression for the shared SBD engine: the DistanceMatrix/spectrum
    // path and the direct-SBD path must produce bit-identical SieveModels
    // on a full application run, under both the serial and the parallel
    // executor.
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(80.0, 6), 0x51, 120_000, 500).unwrap();
    let mut models = Vec::new();
    for parallelism in [1usize, 4] {
        for use_cache in [true, false] {
            let config = fast_config()
                .with_parallelism(parallelism)
                .with_sbd_cache(use_cache);
            models.push(
                Sieve::new(config)
                    .analyze("sharelatex", &store, &call_graph)
                    .unwrap(),
            );
        }
    }
    let reference = &models[0];
    for m in &models[1..] {
        assert_eq!(reference.clusterings, m.clusterings);
        assert_eq!(
            reference.dependency_graph.edges(),
            m.dependency_graph.edges()
        );
        assert_eq!(reference, m);
    }
}

#[test]
fn cached_granger_engine_equals_direct_path_on_a_full_model() {
    // Regression for the shared causality engine: the prepared-series path
    // (cached ADF verdicts, differenced buffers, memoized restricted fits)
    // and the direct per-pair Granger path must produce bit-identical
    // SieveModels on a full application run, under the serial and both
    // parallel executor degrees.
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(80.0, 6), 0x52, 120_000, 500).unwrap();
    let mut models = Vec::new();
    for parallelism in [1usize, 4, 8] {
        for use_cache in [true, false] {
            let config = fast_config()
                .with_parallelism(parallelism)
                .with_granger_cache(use_cache);
            models.push(
                Sieve::new(config)
                    .analyze("sharelatex", &store, &call_graph)
                    .unwrap(),
            );
        }
    }
    let reference = &models[0];
    assert!(
        reference.dependency_graph.edge_count() > 0,
        "the run must infer dependency edges"
    );
    for m in &models[1..] {
        assert_eq!(reference.clusterings, m.clusterings);
        assert_eq!(
            reference.dependency_graph.edges(),
            m.dependency_graph.edges()
        );
        assert_eq!(reference, m);
    }
}

#[test]
fn monitoring_cost_drops_after_reduction() {
    // Table 3's mechanism: re-ingesting only the representative metrics
    // costs a fraction of ingesting everything.
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(70.0, 4), 0x77, 120_000, 500).unwrap();
    let model = Sieve::new(fast_config())
        .analyze("sharelatex", &store, &call_graph)
        .unwrap();

    let keep: Vec<MetricId> = model
        .representative_metrics()
        .into_iter()
        .map(|(component, metric)| MetricId::new(component, metric))
        .collect();
    let reduced = store.retain_only(&keep);
    let before = store.resource_usage();
    let after = reduced.resource_usage();
    let savings = before.reduction_percent(&after);
    assert!(
        savings.cpu_time_s > 50.0,
        "cpu savings {:.1}%",
        savings.cpu_time_s
    );
    assert!(
        savings.db_size_kb > 50.0,
        "storage savings {:.1}%",
        savings.db_size_kb
    );
    assert!(
        savings.network_in_mb > 50.0,
        "network savings {:.1}%",
        savings.network_in_mb
    );
}
