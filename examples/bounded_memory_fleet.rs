//! Bounded-memory fleet: a long-running multi-tenant monitoring loop whose
//! memory footprint stays flat no matter how long it runs.
//!
//! Every store in the pipeline carries a [`RetentionPolicy`]: the
//! per-tenant simulations keep only a short ring of recent points (the
//! collector side), and the serving layer keeps a one-minute analysis
//! window per tenant (the server side). Evicted points are folded into
//! 10x/100x downsampled tiers before they are dropped, and every eviction
//! is *dirt* — it advances the series fingerprint and marks the series
//! touched, so the next `refresh_dirty()` sweep re-analyses exactly the
//! series whose retained window changed.
//!
//! Each observation round advances every simulation one epoch
//! ([`Simulation::step_epoch`]), forwards the new tail points of the
//! touched series through the service's ingest API, and runs one sweep.
//! The per-sweep report shows the two invariants this example exists to
//! demonstrate: the fleet's retained-point count pins to
//! `series x window` and stays there, and process RSS stops growing once
//! every ring is full — while the evicted counter climbs without bound.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bounded_memory_fleet
//! ```

use sieve::apps::tenants::{tenant_fleet, TenantMix};
use sieve::exec::mem::current_rss_kb;
use sieve::prelude::*;
use sieve::serve::MetricPoint;

/// Points each tenant's analysis window retains per series (1 min @ 500 ms).
const SERVE_WINDOW: usize = 120;
/// Points each simulation's collector-side ring retains per series — only
/// enough to cover the tail forwarded since the previous sweep.
const SIM_WINDOW: usize = 64;
/// Simulation ticks advanced per observation round (10 s @ 500 ms).
const TICKS_PER_ROUND: usize = 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = tenant_fleet(TenantMix::ManySmall, 12, 0xB0D1E5);
    let service = SieveService::new(
        ServeConfig::default()
            .with_shard_count(16)
            .with_analysis(SieveConfig::default().with_cluster_range(2, 3))
            .with_retention(RetentionPolicy::windowed(SERVE_WINDOW)),
    )?;

    // Register the fleet. The first tenant gets a deliberately tighter
    // budget than the service default, to show per-tenant overrides.
    let mut simulations = Vec::new();
    for (i, tenant) in fleet.iter().enumerate() {
        let config = SimConfig::new(tenant.seed)
            .with_tick_ms(500)
            .with_duration_ms(u64::MAX / 2)
            .with_retention(RetentionPolicy::windowed(SIM_WINDOW));
        let sim = Simulation::new(tenant.spec.clone(), tenant.workload.clone(), config)?;
        if i == 0 {
            service.create_tenant_with_retention(
                tenant.name.as_str(),
                sim.call_graph(),
                RetentionPolicy::windowed(SERVE_WINDOW / 2),
            )?;
        } else {
            service.create_tenant(tenant.name.as_str(), sim.call_graph())?;
        }
        // Per-tenant high-water mark of forwarded timestamps, so each
        // round only ships the points recorded since the previous one.
        simulations.push((tenant.name.clone(), sim, 0u64));
    }
    println!(
        "Serving {} tenants, window {SERVE_WINDOW} points/series (tenant 0: {}); \
         retained pins at series x window while evicted grows:\n",
        service.tenant_count(),
        SERVE_WINDOW / 2
    );

    for round in 0usize..12 {
        let mut forwarded = 0usize;
        for (name, sim, last_forwarded_ms) in &mut simulations {
            // One observation epoch: advance the simulation and learn
            // which series changed from its delta — the same signal an
            // incremental session would consume.
            let (delta, _ticks) = sim.step_epoch(TICKS_PER_ROUND);
            let mut points = Vec::new();
            let store = sim.store();
            for id in &delta.touched {
                let Some(series) = store.series(id) else {
                    continue;
                };
                for (t, v) in series.iter() {
                    if t > *last_forwarded_ms {
                        points.push(MetricPoint {
                            id: id.clone(),
                            timestamp_ms: t,
                            value: v,
                        });
                    }
                }
            }
            if let Some(newest) = points.iter().map(|p| p.timestamp_ms).max() {
                *last_forwarded_ms = newest;
            }
            forwarded += service.ingest(name, &points)?;
        }

        let stats = service.refresh_dirty()?;
        let rss = current_rss_kb().map_or_else(|| "n/a".to_string(), |kb| format!("{kb} kB"));
        println!(
            "round {round:>2}: {forwarded:>6} points in | retained {:>6}, evicted {:>6} \
             ({:>8} bytes reclaimed) | rss {rss}",
            stats.points_retained, stats.points_evicted, stats.bytes_evicted
        );
    }

    // Read side: the published models only ever see the retained window,
    // and each one is bit-identical to a batch analysis of that window.
    println!("\nPublished models (analysed over each tenant's retained window):");
    for tenant in service.tenants() {
        let model = service
            .model(tenant.as_str())?
            .expect("every tenant published a model");
        println!(
            "  {:<12} retention {:>3?} | {:>3} metrics -> {:>2} representatives ({:.1}x)",
            tenant,
            service.retention(tenant.as_str())?.raw_capacity,
            model.total_metric_count(),
            model.total_representative_count(),
            model.overall_reduction_factor(),
        );
    }
    println!("\nFleet aggregate: {}", service.stats());
    Ok(())
}
