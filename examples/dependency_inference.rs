//! Dependency inference on a small call graph, end to end on the cached
//! causality engine: model a three-tier application, load it under a
//! randomized workload, and print the Granger-inferred dependency edges
//! (step 3 of the paper, §3.3).
//!
//! The example also runs the naive per-pair reference path and verifies
//! that the engine changed nothing but the work schedule — the inferred
//! model is bit-identical.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dependency_inference
//! ```

use sieve::core::config::SieveConfig;
use sieve::core::dependencies::planned_comparison_count;
use sieve::core::pipeline::{load_application, Sieve};
use sieve::prelude::*;

/// A small load balancer -> api -> db topology with per-tier metric
/// families: enough structure for real Granger edges, small enough to run
/// in a couple of seconds.
fn three_tier_app() -> AppSpec {
    let mut app = AppSpec::new("three-tier", "lb");
    app.add_component(
        ComponentSpec::new("lb")
            .with_capacity(200.0)
            .with_metric(MetricSpec::gauge(
                "lb_requests_per_second",
                MetricBehavior::load_proportional(1.0),
            ))
            .with_metric(MetricSpec::gauge(
                "lb_cpu_usage",
                MetricBehavior::cpu_like(0.4),
            )),
    );
    app.add_component(
        ComponentSpec::new("api")
            .with_capacity(100.0)
            .with_metric(MetricSpec::gauge(
                "api_requests_per_second",
                MetricBehavior::load_proportional(1.0),
            ))
            .with_metric(MetricSpec::gauge(
                "api_latency_ms",
                MetricBehavior::latency(40.0, 90.0),
            ))
            .with_metric(MetricSpec::gauge(
                "api_cpu_usage",
                MetricBehavior::cpu_like(1.0),
            )),
    );
    app.add_component(
        ComponentSpec::new("db")
            .with_capacity(300.0)
            .with_metric(MetricSpec::gauge(
                "db_queries_per_second",
                MetricBehavior::load_proportional(2.0),
            ))
            .with_metric(MetricSpec::gauge(
                "db_query_time_ms",
                MetricBehavior::latency(5.0, 250.0),
            ))
            .with_metric(MetricSpec::counter(
                "db_bytes_written_total",
                MetricBehavior::counter(100.0),
            )),
    );
    app.add_call(CallSpec::new("lb", "api").with_lag_ms(500));
    app.add_call(CallSpec::new("api", "db").with_fanout(2.0).with_lag_ms(500));
    app
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = three_tier_app();
    println!(
        "Application `{}`: {} components, {} metrics, calls lb->api->db",
        app.name,
        app.component_count(),
        app.total_metric_count()
    );

    // Step 1 once; steps 2–3 run twice below on the same recorded data.
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(80.0, 3), 0xD1CE, 120_000, 500)?;

    // The default configuration runs the dependency stage on the cached
    // causality engine: one prepared state (ADF verdict, differenced
    // buffer, memoized restricted fits) per representative series.
    let cached = Sieve::new(SieveConfig::default().with_granger_cache(true)).analyze(
        &app.name,
        &store,
        &call_graph,
    )?;
    let naive = Sieve::new(SieveConfig::default().with_granger_cache(false)).analyze(
        &app.name,
        &store,
        &call_graph,
    )?;
    assert_eq!(
        cached, naive,
        "the causality engine must not change the inferred model"
    );

    println!(
        "\nPlanned Granger comparisons (call-graph-restricted): {}",
        planned_comparison_count(&call_graph, &cached.clusterings)
    );
    println!(
        "Inferred dependency graph: {} components, {} edges \
         (cached engine == naive path: verified)",
        cached.dependency_graph.component_count(),
        cached.dependency_graph.edge_count()
    );
    for edge in cached.dependency_graph.edges() {
        println!(
            "  {}::{} -> {}::{}  (lag {} ms, p = {:.4}, F = {:.1})",
            edge.source_component,
            edge.source_metric,
            edge.target_component,
            edge.target_metric,
            edge.lag_ms,
            edge.p_value,
            edge.f_statistic
        );
    }
    Ok(())
}
