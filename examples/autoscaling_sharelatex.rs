//! Case study 1: orchestration of autoscaling for the ShareLatex-like
//! application (§4.1 / §6.2 of the paper).
//!
//! The example runs the whole workflow:
//!
//! 1. analyse the application with Sieve to get the dependency graph;
//! 2. select the guiding metric (the one appearing most often in
//!    Granger-causality relations);
//! 3. calibrate scale-in/out thresholds against the SLA ("90% of request
//!    latencies below 1000 ms") on a 5-minute peak-load sample;
//! 4. replay a one-hour WorldCup-like trace with (a) the Sieve-selected
//!    metric and (b) the traditional CPU-usage trigger, and compare mean CPU
//!    usage, SLA violations and scaling actions (Table 4).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example autoscaling_sharelatex
//! ```

use sieve::autoscale::calibrate::calibrated_rule;
use sieve::autoscale::engine::AutoscaleEngine;
use sieve::autoscale::rules::{select_guiding_metric, SlaCondition};
use sieve::core::config::SieveConfig;
use sieve::core::pipeline::Sieve;
use sieve::prelude::*;
use sieve_apps::sharelatex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let sla = SlaCondition::default();

    // 1. Sieve analysis.
    println!("Running the Sieve analysis of ShareLatex ...");
    let model = Sieve::new(SieveConfig::default()).analyze_application(
        &app,
        &Workload::randomized(120.0, 11),
        0xA11CE,
    )?;

    // 2. Guiding-metric selection.
    let guiding = select_guiding_metric(&model).unwrap_or_else(|| {
        MetricId::new(sharelatex::GUIDING_COMPONENT, sharelatex::GUIDING_METRIC)
    });
    println!("Guiding metric selected by Sieve: {guiding}");
    let cpu_metric = MetricId::new("web", "cpu_usage");

    // 3. Threshold calibration for both policies.
    let peak_rate = 320.0;
    let scalable: Vec<String> = [
        "web",
        "real-time",
        "chat",
        "clsi",
        "contacts",
        "doc-updater",
        "docstore",
        "filestore",
        "spelling",
        "tags",
        "track-changes",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let sieve_rule = calibrated_rule(&app, &guiding, &sla, peak_rate, scalable.clone(), 21)?
        .with_instance_bounds(1, 12)
        .with_cooldown_ticks(10);
    let cpu_rule = calibrated_rule(&app, &cpu_metric, &sla, peak_rate, scalable, 21)?
        .with_instance_bounds(1, 12)
        .with_cooldown_ticks(10);
    println!(
        "Calibrated thresholds — Sieve metric: out {:.0} / in {:.0};  CPU: out {:.1}% / in {:.1}%",
        sieve_rule.scale_out_threshold,
        sieve_rule.scale_in_threshold,
        cpu_rule.scale_out_threshold,
        cpu_rule.scale_in_threshold
    );

    // 4. Replay the one-hour trace under both policies.
    let trace_ticks = 7200; // one hour at 500 ms
    let workload = Workload::worldcup_like(trace_ticks, peak_rate, 1998);
    let config = SimConfig::new(0xE1).with_duration_ms(3_600_000);

    println!("\nReplaying the one-hour trace with the Sieve-selected trigger ...");
    let sieve_report = AutoscaleEngine::new(sieve_rule, sla)?.run(&app, &workload, config)?;
    println!("Replaying the one-hour trace with the CPU-usage trigger ...");
    let cpu_report = AutoscaleEngine::new(cpu_rule, sla)?.run(&app, &workload, config)?;

    println!("\n=== Table 4: CPU-usage trigger vs Sieve's selection ===");
    println!(
        "{:<38} {:>12} {:>12} {:>12}",
        "Metric", "CPU usage", "Sieve", "Difference"
    );
    let diff = |a: f64, b: f64| -> String {
        format!("{:+.2}%", if a == 0.0 { 0.0 } else { (b - a) / a * 100.0 })
    };
    println!(
        "{:<38} {:>12.2} {:>12.2} {:>12}",
        "Mean CPU usage per component [%]",
        cpu_report.mean_cpu_usage_per_component,
        sieve_report.mean_cpu_usage_per_component,
        diff(
            cpu_report.mean_cpu_usage_per_component,
            sieve_report.mean_cpu_usage_per_component
        )
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12}",
        format!(
            "SLA violations (out of {} samples)",
            cpu_report.total_samples
        ),
        cpu_report.sla_violations,
        sieve_report.sla_violations,
        diff(
            cpu_report.sla_violations as f64,
            sieve_report.sla_violations as f64
        )
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12}",
        "Number of scaling actions",
        cpu_report.scaling_actions,
        sieve_report.scaling_actions,
        diff(
            cpu_report.scaling_actions as f64,
            sieve_report.scaling_actions as f64
        )
    );

    Ok(())
}
