//! Quickstart: run the full Sieve pipeline against the ShareLatex-like
//! application model and print what an operator gets out of it — the reduced
//! metric set and the inferred dependency graph.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sieve::core::config::SieveConfig;
use sieve::core::pipeline::Sieve;
use sieve::graph::dot::dependency_graph_to_dot;
use sieve::prelude::*;
use sieve_apps::sharelatex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: model the application. `MetricRichness::Minimal` keeps this
    // example fast; `Full` approximates the paper's 889-metric deployment.
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    println!(
        "Application `{}`: {} components, {} exported metrics",
        app.name,
        app.component_count(),
        app.total_metric_count()
    );

    // Steps 2-3: load the application under a randomized workload, reduce
    // the metric space and identify dependencies.
    let sieve = Sieve::new(SieveConfig::default());
    let model = sieve.analyze_application(&app, &Workload::randomized(80.0, 7), 0xC0FFEE)?;

    println!(
        "\nMetric reduction: {} metrics -> {} representatives ({:.1}x)",
        model.total_metric_count(),
        model.total_representative_count(),
        model.overall_reduction_factor()
    );
    println!("\nPer-component clusters:");
    for (component, clustering) in &model.clusterings {
        println!(
            "  {:<14} {:>3} metrics -> {:>2} clusters (silhouette {:.2}), representatives: {}",
            component,
            clustering.total_metrics,
            clustering.clusters.len(),
            clustering.silhouette,
            clustering.representatives().join(", ")
        );
    }

    println!(
        "\nDependency graph: {} components, {} edges",
        model.dependency_graph.component_count(),
        model.dependency_graph.edge_count()
    );
    for edge in model.dependency_graph.edges().iter().take(10) {
        println!(
            "  {}::{} -> {}::{} (lag {} ms, p = {:.4})",
            edge.source_component,
            edge.source_metric,
            edge.target_component,
            edge.target_metric,
            edge.lag_ms,
            edge.p_value
        );
    }
    if model.dependency_graph.edge_count() > 10 {
        println!(
            "  ... and {} more",
            model.dependency_graph.edge_count() - 10
        );
    }

    if let Some(metric) = model.dependency_graph.most_connected_metric() {
        println!("\nMost connected metric (autoscaling candidate): {metric}");
    }

    // The graph can be exported to Graphviz DOT for visual inspection
    // (Figure 6 of the paper).
    let dot = dependency_graph_to_dot(&model.dependency_graph);
    println!(
        "\nDOT export: {} bytes (pipe into `dot -Tpng` to render)",
        dot.len()
    );

    Ok(())
}
