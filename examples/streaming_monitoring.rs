//! Streaming monitoring: a simulation and an analysis session in
//! lock-step.
//!
//! Instead of recording a full run and batch-analyzing it afterwards
//! (`Sieve::analyze_application`), this example advances the simulator a
//! few seconds at a time, drains the store delta of each epoch and feeds
//! it to a long-lived [`AnalysisSession`]. The session re-prepares only
//! touched components, re-clusters only components whose prepared content
//! changed, and re-tests only Granger comparisons with a changed endpoint
//! — and still emits, at every epoch, exactly the model a from-scratch
//! batch analysis of the data so far would produce.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_monitoring
//! ```

use sieve::apps::{sharelatex, MetricRichness};
use sieve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let sim_config = SimConfig::new(0xFEED)
        .with_tick_ms(500)
        .with_duration_ms(120_000);
    let mut sim = Simulation::new(app, Workload::randomized(70.0, 9), sim_config)?;

    let config = SieveConfig::default();
    let mut session = AnalysisSession::new(
        "sharelatex",
        sim.store().clone(),
        sim.call_graph(),
        config.clone(),
    )?;

    println!("Streaming ShareLatex under load, one analysis epoch per 15 s of traffic:\n");
    let mut previous: Option<std::sync::Arc<SieveModel>> = None;
    loop {
        // 30 ticks x 500 ms = one 15-second observation epoch.
        let (delta, executed) = sim.step_epoch(30);
        if executed == 0 {
            break;
        }
        session.set_call_graph(sim.call_graph());
        // `update_shared` returns the session's retained snapshot without
        // cloning the model — the right call on a per-epoch hot path.
        let model = session.update_shared(&delta)?;
        let stats = session.last_stats();

        let drift = match &previous {
            None => "first model".to_string(),
            Some(prev) => {
                let new_edges = model.dependency_graph.edges_not_in(&prev.dependency_graph);
                let dropped_edges = prev.dependency_graph.edges_not_in(&model.dependency_graph);
                let moved_reps = model
                    .clusterings
                    .iter()
                    .filter(|(name, c)| {
                        prev.clustering_of(name).map(|p| p.representatives())
                            != Some(c.representatives())
                    })
                    .count();
                format!(
                    "+{} / -{} edges, {} components changed representatives",
                    new_edges.len(),
                    dropped_edges.len(),
                    moved_reps
                )
            }
        };
        println!(
            "epoch {:>2}: {:>3} series touched | re-prepared {:>2}, re-clustered {:>2}, \
             re-tested {:>3}/{:>3} comparisons | {:>3} reps, {:>3} edges | drift: {}",
            delta.epoch,
            delta.touched.len(),
            stats.components_prepared,
            stats.components_reclustered,
            stats.comparisons_tested,
            stats.comparisons_planned,
            model.total_representative_count(),
            model.dependency_graph.edge_count(),
            drift
        );
        previous = Some(model);
    }

    // The incremental path is exact, not approximate: the final streamed
    // model is bit-identical to a batch analysis of the full recording.
    let streamed = previous.expect("at least one epoch ran");
    let batch = Sieve::new(config).analyze("sharelatex", sim.store(), &sim.call_graph())?;
    assert_eq!(*streamed, batch);
    println!(
        "\nFinal streamed model matches batch analysis bit for bit: {} metrics -> {} \
         representatives ({}x reduction), {} dependency edges.",
        streamed.total_metric_count(),
        streamed.total_representative_count(),
        streamed.overall_reduction_factor().round(),
        streamed.dependency_graph.edge_count()
    );
    Ok(())
}
