//! Crash-safe serving: ingest into a durable [`SieveService`], kill it,
//! and recover the whole fleet from its write-ahead logs and snapshots.
//!
//! Every accepted ingest batch and tenant-admin event is group-committed
//! to a per-shard append-only log (checksummed frames, fsync on commit),
//! and shards snapshot periodically to bound replay work. Dropping the
//! service without any shutdown protocol loses nothing:
//! `SieveService::recover` replays snapshot + log tail through the
//! ordinary store machinery and the recovered service publishes models
//! bit-identical to the pre-crash live ones.
//!
//! The second half corrupts the log tail on purpose (a torn write, as a
//! crashing kernel would leave behind) and shows recovery degrading
//! gracefully: the corrupt suffix is detected by checksum and dropped,
//! the surviving prefix is served, and resumed ingest re-converges.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example durable_serving
//! ```

use sieve::prelude::*;
use sieve::serve::{DurabilityConfig, FsyncPolicy};

fn wave(tenant_index: usize, ticks: std::ops::Range<u64>) -> Vec<MetricPoint> {
    let bias = tenant_index as f64 * 0.8;
    ticks
        .flat_map(|t| {
            let x = t as f64 * 0.17 + bias;
            [
                MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0),
                MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0),
                MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin() * 2.0),
                MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()),
            ]
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("sieve-durable-serving-{}", std::process::id()));
    let config = ServeConfig::default()
        .with_shard_count(16)
        .with_analysis(SieveConfig::default().with_cluster_range(2, 3))
        .with_durability(
            DurabilityConfig::new(&dir)
                .with_fsync(FsyncPolicy::Always)
                .with_snapshot_every_events(64),
        );

    // Phase 1: a durable service takes traffic for three tenants.
    let tenants = ["checkout", "search", "billing"];
    let service = SieveService::new(config.clone())?;
    let mut call_graph = CallGraph::new();
    call_graph.record_calls("web", "db", 100);
    for name in tenants {
        service.create_tenant(name, call_graph.clone())?;
    }
    for round in 0u64..5 {
        for (i, name) in tenants.iter().enumerate() {
            service.ingest(name, &wave(i, round * 20..(round + 1) * 20))?;
        }
    }
    service.refresh_dirty()?;
    let live: Vec<_> = tenants
        .iter()
        .map(|name| service.model(name).map(Option::unwrap))
        .collect::<Result<_, _>>()?;
    let stats = service.stats();
    println!("live service: {stats}");
    println!(
        "dataplane:    {} fsync calls for the ingest above; {} commits rode \
         another thread's leader write; pool ran {} chunk tasks on {} workers",
        stats.fsync_calls,
        stats.commits_coalesced,
        stats.pool_tasks_executed,
        stats.pool_workers_spawned
    );

    // Phase 2: "kill" the process — no flush, no shutdown handshake — and
    // recover from the directory alone.
    drop(service);
    let (recovered, report) = SieveService::recover(config.clone())?;
    println!("recovery:     {report}");
    recovered.refresh_dirty()?;
    for (name, live_model) in tenants.iter().zip(&live) {
        let model = recovered.model(name)?.expect("tenant republished");
        assert_eq!(
            *model, **live_model,
            "{name}: recovered model must be bit-identical to the live one"
        );
    }
    println!("recovered models are bit-identical to the pre-crash live models\n");

    // Phase 3: simulate a torn write — more ingest, then chop bytes off
    // one shard's log tail, as a crash mid-write would.
    for (i, name) in tenants.iter().enumerate() {
        recovered.ingest(name, &wave(i, 100..130))?;
    }
    drop(recovered);
    let torn = sieve::exec::hash::shard_index("search", config.shard_count);
    let log_path = dir.join(sieve::wal::log_file_name(torn));
    let bytes = std::fs::read(&log_path)?;
    std::fs::write(&log_path, &bytes[..bytes.len().saturating_sub(7)])?;
    println!("tore {} bytes off {}", 7, log_path.display());

    let (degraded, report) = SieveService::recover(config)?;
    println!("recovery:     {report}");
    degraded.refresh_dirty()?;

    // Phase 4: resumed ingest re-converges the degraded tenant.
    for (i, name) in tenants.iter().enumerate() {
        degraded.ingest(name, &wave(i, 130..160))?;
    }
    degraded.refresh_dirty()?;
    for name in tenants {
        let model = degraded.model(name)?.expect("tenant republished");
        println!(
            "  {:<9} {:>3} metrics -> {:>2} representatives, {} dependency edges",
            name,
            model.total_metric_count(),
            model.total_representative_count(),
            model.dependency_graph.edge_count()
        );
    }
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
