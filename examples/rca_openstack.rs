//! Case study 2: root cause analysis for the OpenStack-like application
//! (§4.2 / §6.3 of the paper, Launchpad bug #1533942).
//!
//! The example analyses a correct and a faulty version of the OpenStack
//! model (the fault reproduces the Neutron Open vSwitch agent crash), feeds
//! both Sieve models to the RCA engine and prints the five-step output: the
//! component rankings, the cluster/edge novelty statistics and the final
//! ranked list of `{component, metric list}` candidates.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rca_openstack
//! ```

use sieve::core::config::SieveConfig;
use sieve::core::pipeline::Sieve;
use sieve::prelude::*;
use sieve::rca::{RcaConfig, RcaEngine};
use sieve_apps::openstack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let correct_app = openstack::app_spec(MetricRichness::Minimal);
    let faulty_app = openstack::faulty_app_spec(MetricRichness::Minimal);
    // Rally-like `boot_and_delete` load: a steady stream of VM launches.
    let workload = Workload::randomized(60.0, 5);
    let sieve = Sieve::new(SieveConfig::default());

    println!("Analysing the correct version ...");
    let correct = sieve.analyze_application(&correct_app, &workload, 0xBEEF)?;
    println!("Analysing the faulty version (OVS agent crash injected) ...");
    let faulty = sieve.analyze_application(&faulty_app, &workload, 0xBEEF)?;

    println!(
        "\nDependency graphs: correct = {} edges, faulty = {} edges",
        correct.dependency_graph.edge_count(),
        faulty.dependency_graph.edge_count()
    );

    let engine = RcaEngine::new(RcaConfig::default());
    let report = engine.compare(&correct, &faulty);

    println!("\n=== Step 2: components ranked by metric novelty (Table 5) ===");
    println!(
        "{:<22} {:>8} {:>6} {:>10} {:>8}",
        "Component", "Changed", "New", "Discarded", "Total"
    );
    for ranking in report.component_rankings.iter().take(10) {
        println!(
            "{:<22} {:>8} {:>6} {:>10} {:>8}",
            ranking.component,
            ranking.novelty_score,
            ranking.new_metrics,
            ranking.discarded_metrics,
            ranking.total_metrics
        );
    }

    println!("\n=== Step 3: cluster novelty (Figure 7a) ===");
    let c = &report.cluster_novelty;
    println!(
        "new-only: {}, discarded-only: {}, new+discarded: {}, changed membership: {}, total: {}",
        c.with_new_only,
        c.with_discarded_only,
        c.with_new_and_discarded,
        c.changed_membership,
        c.total
    );

    println!(
        "\n=== Step 4: edge novelty at similarity threshold {:.2} (Figure 7b) ===",
        report.config.similarity_threshold
    );
    let e = &report.edge_novelty;
    println!(
        "new: {}, discarded: {}, lag changed: {}, unchanged: {}",
        e.new, e.discarded, e.lag_changed, e.unchanged
    );
    let (components, clusters, metrics) = report.surviving_scope;
    println!(
        "surviving scope (Figure 7c): {components} components, {clusters} clusters, {metrics} metrics"
    );

    println!("\n=== Step 5: final ranking ===");
    for cause in &report.final_ranking {
        println!(
            "#{} {:<22} (novelty {:>2})  metrics: {}",
            cause.rank,
            cause.component,
            cause.novelty_score,
            cause.metrics.join(", ")
        );
    }

    // The ground truth of bug #1533942: the ERROR-state instances and the
    // DOWN neutron ports should be implicated.
    println!(
        "\nGround truth check: nova ERROR metric implicated: {}, neutron DOWN metric implicated: {}",
        report.implicates_metric("nova-api", openstack::ERROR_METRIC),
        report.implicates_metric("neutron-server", openstack::ROOT_CAUSE_METRIC)
    );

    Ok(())
}
