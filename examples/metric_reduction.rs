//! Metric reduction in isolation: how Sieve turns a component's raw metric
//! time series into a handful of representative metrics.
//!
//! This example builds a small set of synthetic metric series by hand (three
//! behaviour families plus constants), runs the reduction step directly and
//! shows the clusters, the silhouette-driven choice of `k` and the
//! representatives — the mechanism behind Figure 4 of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example metric_reduction
//! ```

use sieve::core::columnar::PreparedComponent;
use sieve::core::config::SieveConfig;
use sieve::core::reduce::{reduce_component, NamedSeries};
use sieve::timeseries::sbd::sbd;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let len = 120;
    let mut series: Vec<NamedSeries> = Vec::new();

    // Family 1: request-driven metrics (same diurnal shape, different units).
    for (name, scale, offset) in [
        ("http_requests_per_second", 1.0, 0.0),
        ("cpu_usage", 0.7, 5.0),
        ("net_bytes_sent_rate", 900.0, 1000.0),
    ] {
        series.push(NamedSeries::new(
            name,
            (0..len)
                .map(|i| offset + scale * (40.0 + 30.0 * ((i as f64) * 0.1).sin()))
                .collect::<Vec<f64>>(),
        ));
    }
    // Family 2: queue-style metrics that lag the request wave.
    for (name, lag) in [("queue_depth", 5usize), ("worker_backlog", 7usize)] {
        series.push(NamedSeries::new(
            name,
            (0..len)
                .map(|i: usize| 10.0 + 8.0 * ((i.saturating_sub(lag) as f64) * 0.1).sin())
                .collect::<Vec<f64>>(),
        ));
    }
    // Family 3: periodic housekeeping independent of load.
    series.push(NamedSeries::new(
        "gc_pause_ms",
        (0..len)
            .map(|i| 4.0 + 3.0 * ((i as f64) * 0.8).sin())
            .collect::<Vec<f64>>(),
    ));
    // Constants that the variance filter must drop.
    for (name, value) in [("open_file_limit", 65536.0), ("num_cpus", 8.0)] {
        series.push(NamedSeries::new(name, vec![value; len]));
    }

    let config = SieveConfig::default();
    // Pack the hand-built series into the columnar arena the pipeline uses.
    let prepared = PreparedComponent::from_named(&series);
    let clustering = reduce_component("example-service", &prepared, &config)?;

    println!(
        "Component `{}`: {} metrics, {} filtered as unvarying, k = {} (silhouette {:.2})",
        clustering.component,
        clustering.total_metrics,
        clustering.filtered_metrics.len(),
        clustering.chosen_k,
        clustering.silhouette
    );
    println!("Filtered: {}", clustering.filtered_metrics.join(", "));
    for (i, cluster) in clustering.clusters.iter().enumerate() {
        println!(
            "\nCluster {i}: representative `{}` (distance to centroid {:.3})",
            cluster.representative, cluster.representative_distance
        );
        for member in &cluster.members {
            println!("    - {member}");
        }
    }

    // Show that the representative really is shape-close to its cluster
    // members.
    let by_name: std::collections::HashMap<&str, &[f64]> = series
        .iter()
        .map(|s| (s.name.as_str(), &*s.values))
        .collect();
    println!("\nShape-based distances inside the first cluster:");
    if let Some(cluster) = clustering.clusters.first() {
        let rep = by_name[cluster.representative.as_str()];
        for member in &cluster.members {
            let d = sbd(rep, by_name[member.as_str()])?;
            println!("    SBD({}, {}) = {:.3}", cluster.representative, member, d);
        }
    }

    Ok(())
}
