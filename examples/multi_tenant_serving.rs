//! Multi-tenant serving: one sharded [`SieveService`] hosting a fleet of
//! isolated applications.
//!
//! Each tenant is a small simulated deployment streaming its metrics into
//! the service through the batched ingest API. After every observation
//! round, one `refresh_dirty()` sweep drains all tenants' deltas and
//! refreshes exactly the dirty ones in a single parallel fan-out — idle
//! tenants cost nothing, and every published model is bit-identical to a
//! from-scratch per-tenant analysis.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant_serving
//! ```

use sieve::apps::tenants::{tenant_fleet, TenantMix};
use sieve::prelude::*;
use sieve::serve::MetricPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fleet of eight small tenants (gateway -> api -> db each), with
    // per-tenant traffic rates and seeds.
    let fleet = tenant_fleet(TenantMix::ManySmall, 8, 0xF1EE7);
    let service = SieveService::new(
        ServeConfig::default()
            .with_shard_count(16)
            .with_analysis(SieveConfig::default().with_cluster_range(2, 3)),
    )?;

    // Register every tenant and keep a running simulation per tenant as
    // its traffic source.
    let mut simulations = Vec::new();
    for tenant in &fleet {
        let config = SimConfig::new(tenant.seed)
            .with_tick_ms(500)
            .with_duration_ms(90_000);
        let sim = Simulation::new(tenant.spec.clone(), tenant.workload.clone(), config)?;
        service.create_tenant(tenant.name.as_str(), sim.call_graph())?;
        simulations.push((tenant.name.clone(), sim));
    }
    println!(
        "Serving {} tenants over {} shards; one sweep per 15 s observation round:\n",
        service.tenant_count(),
        service.config().shard_count
    );

    // Tenants stream at different speeds: tenant i pauses every (i%3+2)-th
    // round, so each sweep sees a different dirty subset.
    for round in 0usize..8 {
        let mut streamed = 0usize;
        for (i, (name, sim)) in simulations.iter_mut().enumerate() {
            if round % (i % 3 + 2) == 0 {
                continue; // this tenant is idle this round
            }
            // Advance 30 ticks (15 s) and forward the points through the
            // service's ingest API, as a collector agent would.
            let mut points = Vec::new();
            for _ in 0..30 {
                let Some(snapshot) = sim.step() else { break };
                let time_ms = snapshot.time_ms;
                let store = sim.store();
                for component in store.components() {
                    store.for_each_series_of(component.as_str(), |id, series| {
                        if series.end_ms() == Some(time_ms) {
                            points.push(MetricPoint {
                                id: id.clone(),
                                timestamp_ms: time_ms,
                                value: *series.values().last().unwrap(),
                            });
                        }
                    });
                }
            }
            service.set_call_graph(name, sim.call_graph())?;
            streamed += service.ingest(name, &points)?;
        }

        let stats = service.refresh_dirty()?;
        println!("round {round}: {streamed:>5} points ingested | {stats}");
    }

    // Read side: every tenant's latest model snapshot, served lock-free to
    // any number of readers.
    println!("\nPublished models:");
    for tenant in service.tenants() {
        let model = service
            .model(tenant.as_str())?
            .expect("every tenant published a model");
        println!(
            "  {:<10} {:>3} metrics -> {:>2} representatives ({:.1}x), {} dependency edges",
            tenant,
            model.total_metric_count(),
            model.total_representative_count(),
            model.overall_reduction_factor(),
            model.dependency_graph.edge_count()
        );
    }
    let aggregate = service.stats();
    println!("\nFleet aggregate: {aggregate}");
    Ok(())
}
