//! Chaos scenarios: grading Sieve against scripted ground truth.
//!
//! The scenario engine generates adversarial deployments whose ground
//! truth is known by construction — the generator scripted every fault,
//! burst and dependency flip. This example runs two scenarios from the
//! named matrix and grades the pipeline's answers:
//!
//! * `root-cause` injects a fault into `svc-a` at epoch 5 — RCA comparing
//!   the last pre-fault model against the final one must rank `svc-a`
//!   in the top-3;
//! * `edge-drift` scripts a dependency edge appearing at epoch 2 and
//!   another disappearing at epoch 5 — the incremental session must
//!   track both flips within 3 epochs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chaos_scenarios
//! ```

use sieve::prelude::*;
use sieve::scenario::matrix::{edge_drift, root_cause, DRIFT_WINDOW_EPOCHS, RCA_TOP_K};
use sieve::scenario::run_streamed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for spec in [root_cause(), edge_drift()] {
        let seed = 41;
        let data = generate(&spec, seed)?;
        println!(
            "scenario {:>12} seed {seed}: {} epochs, {} points, {} scripted events",
            spec.name,
            data.epochs.len(),
            data.point_count(),
            spec.events.len()
        );

        // Stream the scenario epoch by epoch through an analysis session,
        // exactly as a live deployment would arrive.
        let models = run_streamed(&data, &spec.analysis_config(1))?;

        // Grade against the scripted truth.
        if let Some(rca) = score_rca(&models, &data.truth, RcaConfig::default(), RCA_TOP_K) {
            println!(
                "  rca:    injected root cause {} ranked {:?} — top-{} {}",
                rca.component,
                rca.rank,
                rca.top_k,
                if rca.hit() { "HIT" } else { "MISS" }
            );
        }
        let drift = score_drift(&models, &data.truth);
        for outcome in &drift.outcomes {
            println!(
                "  drift:  {} -> {} {} at epoch {} — detected at {:?} (lag {:?}, within {} epochs: {})",
                outcome.caller,
                outcome.callee,
                if outcome.up { "up" } else { "down" },
                outcome.scripted_epoch,
                outcome.detected_epoch,
                outcome.lag_epochs(),
                DRIFT_WINDOW_EPOCHS,
                outcome.tracked_within(DRIFT_WINDOW_EPOCHS)
            );
        }
        let clusters = score_clusters(models.last().unwrap(), &data.truth);
        println!(
            "  family: chosen-k mean absolute error {:.2} across {} components",
            clusters.mean_abs_error(),
            clusters.per_component.len()
        );
    }
    Ok(())
}
